"""Registered allowlists and pair registries for the lint rules.

Everything a rule exempts lives here, with a justification string, so
"why is this allowed?" is answerable by reading one file — and adding a
new exemption is a reviewable diff, not a scattered pragma.

Paths are repo-root-relative with forward slashes (matching
:attr:`repro.lint.engine.ModuleInfo.relpath`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from ..snapshots.core import FLAT_SNAPSHOT_COLUMNS, REFERENCE_SNAPSHOT_FIELDS

__all__ = [
    "ParityPair",
    "JournalSpec",
    "SnapshotSpec",
    "EffectEntry",
    "LintConfig",
    "REPO_CONFIG",
]


# ---------------------------------------------------------------------------
# R003 — backend API parity pairs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParityPair:
    """One reference↔flat surface that must stay in lockstep.

    ``kind`` is ``"class"`` (compare public method/property names and
    their parameter lists) or ``"function"`` (compare parameter lists).
    ``allow_extra_flat``/``allow_extra_ref`` name members that may exist
    on one side only (each with a justification in ``notes``).
    ``param_renames`` maps reference-side parameter names to their
    accepted flat-side spelling.  ``flat_base`` — a ``(path, symbol)``
    of the flat class's base — merges the base's public members into
    the flat surface before diffing, so a subclass backend (e.g. the
    parallel backend subclassing the flat one) is compared by its
    *effective* surface, not just the overrides its own body declares.
    """

    name: str
    kind: str
    ref_path: str
    ref_symbol: str
    flat_path: str
    flat_symbol: str
    allow_extra_ref: FrozenSet[str] = frozenset()
    allow_extra_flat: FrozenSet[str] = frozenset()
    param_renames: Mapping[str, str] = field(default_factory=dict)
    flat_base: Optional[Tuple[str, str]] = None
    notes: str = ""


PARITY_PAIRS: Tuple[ParityPair, ...] = (
    ParityPair(
        name="rbsts",
        kind="class",
        ref_path="src/repro/splitting/rbsts.py",
        ref_symbol="RBSTS",
        flat_path="src/repro/perf/flat_rbsts.py",
        flat_symbol="FlatRBSTS",
        allow_extra_flat=frozenset({"slab_size", "free_slots", "handle"}),
        notes=(
            "slab_size/free_slots expose struct-of-arrays capacity (no "
            "pointer-backend analogue); handle(idx) is the slot->FlatLeaf "
            "constructor the reference backend does not need."
        ),
    ),
    ParityPair(
        name="activate",
        kind="function",
        ref_path="src/repro/splitting/activation.py",
        ref_symbol="activate",
        flat_path="src/repro/perf/flat_activation.py",
        flat_symbol="flat_activate",
    ),
    ParityPair(
        name="deactivate",
        kind="function",
        ref_path="src/repro/splitting/activation.py",
        ref_symbol="deactivate",
        flat_path="src/repro/perf/flat_activation.py",
        flat_symbol="flat_deactivate",
    ),
    ParityPair(
        name="activation-result",
        kind="class",
        ref_path="src/repro/splitting/activation.py",
        ref_symbol="ActivationResult",
        flat_path="src/repro/perf/flat_activation.py",
        flat_symbol="FlatActivationResult",
        allow_extra_flat=frozenset({"deactivate", "tree"}),
        notes=(
            "FlatActivationResult.deactivate() is a convenience bound "
            "method (the reference API uses the free function); the "
            "`tree` field is the backing FlatRBSTS the column clears "
            "need — the reference result holds node objects instead."
        ),
    ),
    ParityPair(
        name="contraction-trace",
        kind="class",
        ref_path="src/repro/contraction/rake_tree.py",
        ref_symbol="RakeTrace",
        flat_path="src/repro/perf/flat_contraction.py",
        flat_symbol="FlatContraction",
        allow_extra_ref=frozenset({"new_node"}),
        allow_extra_flat=frozenset({"replay", "removal"}),
        notes=(
            "new_node is the reference trace's RTNode allocator (the "
            "slab allocates rows inline); replay() is the flat "
            "backend's build entry point (the reference uses the free "
            "function build_trace); the removal property materialises "
            "the reference-shaped removal dict on demand (the "
            "reference keeps it as a plain instance attribute)."
        ),
    ),
    ParityPair(
        name="extended-parse-tree",
        kind="function",
        ref_path="src/repro/splitting/parse_tree.py",
        ref_symbol="build_extended_parse_tree",
        flat_path="src/repro/perf/flat_prefix.py",
        flat_symbol="flat_extended_parse_tree",
        param_renames={"root": "tree"},
        notes=(
            "the reference walks from a node, the flat twin from the "
            "tree (slots need the column arrays)."
        ),
    ),
    ParityPair(
        name="parallel-rbsts",
        kind="class",
        ref_path="src/repro/perf/flat_rbsts.py",
        ref_symbol="FlatRBSTS",
        flat_path="src/repro/perf/parallel/rbsts.py",
        flat_symbol="ParallelRBSTS",
        flat_base=("src/repro/perf/flat_rbsts.py", "FlatRBSTS"),
        allow_extra_flat=frozenset({"close", "engine"}),
        notes=(
            "backend='parallel' must stay a drop-in twin of the flat "
            "surface it subclasses (the differential rig replays one "
            "op stream on both); close() releases the shared-memory "
            "slabs and engine is the attached worker-pool engine — "
            "neither has a single-process analogue."
        ),
    ),
    ParityPair(
        name="parallel-contraction",
        kind="class",
        ref_path="src/repro/perf/flat_contraction.py",
        ref_symbol="FlatContraction",
        flat_path="src/repro/perf/parallel/contraction.py",
        flat_symbol="ParallelContraction",
        flat_base=("src/repro/perf/flat_contraction.py", "FlatContraction"),
        allow_extra_flat=frozenset({"close", "engine"}),
        notes=(
            "ParallelContraction overrides heal/set_rake_op (cached "
            "level schedules + offloaded evaluation) and must keep "
            "their signatures in lockstep with FlatContraction; "
            "close()/engine are the slab/pool handles with no "
            "single-process analogue."
        ),
    ),
)


# ---------------------------------------------------------------------------
# R004 — journal / crash-point coverage
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalSpec:
    """One backend class whose interior mutations must be journal-guarded.

    A method *mutates interior state* when it stores to a structural
    node attribute (``node_fields``) on any object, subscript-assigns
    into a column (``columns``), or calls a growing/shrinking list
    method (``append``/``extend``/``insert``/``pop``/``clear``) on a
    column.  Every such method must reference the journal seam
    (``self._journal``), be registered as a crash-point hook in
    ``testing/crashes.py``, or appear in ``allowlist`` (with a
    justification).

    ``class_name=None`` scans the whole module instead of one class:
    every top-level function and every method of every class is
    checked.  This is how the resilience layer is covered — its scrub
    rewrites and checkpoint restores mutate *someone else's* backend,
    so ``any_receiver=True`` widens column matching from ``self.<col>``
    to ``<any expr>.<col>`` (e.g. ``tree._n_leaves[s] = ...``).
    """

    path: str
    class_name: Optional[str] = None
    node_fields: FrozenSet[str] = frozenset()
    columns: FrozenSet[str] = frozenset()
    allowlist: Mapping[str, str] = field(default_factory=dict)
    any_receiver: bool = False


#: The file whose ``_patch(Class, "hook", ...)`` calls register the
#: crash-point hooks (R004 cross-checks that each hook still exists).
CRASH_POINTS_PATH = "src/repro/testing/crashes.py"

JOURNAL_SPECS: Tuple[JournalSpec, ...] = (
    JournalSpec(
        path="src/repro/splitting/rbsts.py",
        class_name="RBSTS",
        node_fields=frozenset(
            {
                "left",
                "right",
                "parent",
                "depth",
                "height",
                "n_leaves",
                "summary",
                "shortcuts",
                "item",
            }
        ),
        allowlist={
            "__init__": "construction precedes the first transaction",
            "_new_node": (
                "initialises a node created this operation; no pre-image "
                "exists to journal"
            ),
            "insert": (
                "single-op path: payload store targets the freshly "
                "allocated leaf only; structural splices happen inside "
                "_rebuild_at/_update_upward (journaled + crash-ticked)"
            ),
            "delete": (
                "single-op path: mutations confined to _rebuild_at/"
                "_update_upward (journaled + crash-ticked)"
            ),
            "_batch_insert_core": (
                "payload stores target leaves created this batch (no "
                "pre-image to journal); structural splices run inside "
                "_rebuild_at, which journals and crash-ticks"
            ),
        },
    ),
    JournalSpec(
        path="src/repro/perf/flat_rbsts.py",
        class_name="FlatRBSTS",
        columns=frozenset(
            {
                "_parent",
                "_left",
                "_right",
                "_n_leaves",
                "_depth",
                "_height",
                "_shortcuts",
                "_item",
                "_summary",
                "_active",
                "_low",
                "_handle",
                "_free",
            }
        ),
        allowlist={
            "__init__": "construction precedes the first transaction",
            "_build": (
                "bulk construction from __init__; runs before any "
                "transaction exists"
            ),
            "insert": (
                "single-op path: stores target the slot allocated this "
                "call; splices happen inside _rebuild_at/_update_upward "
                "(journaled + crash-ticked)"
            ),
            "delete": (
                "single-op path: mutations confined to journaled/"
                "crash-ticked helpers"
            ),
            "_rebuild_without": (
                "delete helper operating on slots whose pre-images the "
                "caller's _rebuild_at journal entry already captured"
            ),
            "handle": (
                "lazy interning-cache fill (slot -> FlatLeaf); "
                "idempotent and derivable, not structural state the "
                "crash fuzzer needs to roll back"
            ),
        },
    ),
    # Resilience-layer mutation sites (module scans).  Scrub rewrites
    # and checkpoint restores patch *another object's* backend cells, so
    # column matching is receiver-agnostic.  ``resilience/faults.py`` is
    # deliberately NOT covered: it is the attacker — its whole point is
    # unjournaled corruption (in-batch damage targets journal-covered
    # cells by construction; at-rest damage is scrub-and-repair's diet).
    JournalSpec(
        path="src/repro/resilience/scrub.py",
        class_name=None,
        node_fields=frozenset(
            {
                "left",
                "right",
                "parent",
                "depth",
                "height",
                "n_leaves",
                "summary",
                "shortcuts",
            }
        ),
        columns=frozenset(
            {
                "_parent",
                "_left",
                "_right",
                "_n_leaves",
                "_depth",
                "_height",
                "_shortcuts",
                "_item",
                "_summary",
                "_free",
            }
        ),
        any_receiver=True,
        allowlist={},
    ),
    JournalSpec(
        path="src/repro/resilience/executor.py",
        class_name=None,
        node_fields=frozenset(
            {
                "left",
                "right",
                "parent",
                "depth",
                "height",
                "n_leaves",
                "summary",
                "shortcuts",
            }
        ),
        columns=frozenset(
            {
                "_parent",
                "_left",
                "_right",
                "_n_leaves",
                "_depth",
                "_height",
                "_shortcuts",
                "_item",
                "_summary",
                "_free",
            }
        ),
        any_receiver=True,
        allowlist={},
    ),
)


# ---------------------------------------------------------------------------
# R004 — snapshot-coverage mode (PR 8)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SnapshotSpec:
    """One backend class whose mutated state must be *restorable via the
    unified snapshot path* (``repro.snapshots``).

    The journal mode above asks "is this mutation observed?"; the
    snapshot mode asks the complementary question: "does the snapshot
    restore bring this state back?".  A mutation of a column or node
    field **outside** the declared coverage sets is state a
    ``Snapshot.restore`` / ``SnapshotState.restore`` silently loses —
    exactly the bug class the crash/snapshot fuzzers cannot see, because
    their bit-for-bit audits only compare covered state.

    * ``columns`` — the ``self._<col>`` containers the snapshot path
      restores (:data:`repro.snapshots.core.FLAT_SNAPSHOT_COLUMNS` for
      the flat family).  Any subscript store or list-mutator call on a
      *different* private ``self._x`` container is flagged.
    * ``node_class`` — ``(path, class)`` whose ``__slots__`` define the
      node-field universe; fields outside ``covered_fields``
      (:data:`repro.snapshots.core.REFERENCE_SNAPSHOT_FIELDS`) are
      flagged when stored to.  Adding a slot to ``BSTNode`` and mutating
      it without extending snapshot coverage fails lint.
    * ``allowlist`` — method name -> justification for exempt sites
      (e.g. scalar registers the snapshot captures separately).

    R004 also cross-checks the crash-hook registry
    (``testing/crashes.py``): every class with registered crash hooks
    must be claimed by a SnapshotSpec or listed in
    :data:`SNAPSHOT_EXEMPT` — a crash point inside an un-snapshottable
    structure is a crash nobody can recover from.
    """

    path: str
    class_name: str
    columns: FrozenSet[str] = frozenset()
    node_class: Optional[Tuple[str, str]] = None
    covered_fields: FrozenSet[str] = frozenset()
    allowlist: Mapping[str, str] = field(default_factory=dict)


SNAPSHOT_SPECS: Tuple[SnapshotSpec, ...] = (
    SnapshotSpec(
        path="src/repro/splitting/rbsts.py",
        class_name="RBSTS",
        node_class=("src/repro/splitting/node.py", "BSTNode"),
        covered_fields=REFERENCE_SNAPSHOT_FIELDS,
    ),
    SnapshotSpec(
        path="src/repro/perf/flat_rbsts.py",
        class_name="FlatRBSTS",
        columns=FLAT_SNAPSHOT_COLUMNS,
    ),
    SnapshotSpec(
        path="src/repro/perf/parallel/rbsts.py",
        class_name="ParallelRBSTS",
        columns=FLAT_SNAPSHOT_COLUMNS,
    ),
)

#: Crash-hooked classes that legitimately carry no snapshot-coverable
#: structural state.  ``SnapshotIO`` is the persistence pipeline's
#: stage-hook seam: its crash points bracket save/restore *of* snapshots
#: and the atomic-write / re-restore contracts are what recover from
#: them — there is nothing for a SnapshotSpec to cover.
SNAPSHOT_EXEMPT: FrozenSet[str] = frozenset({"SnapshotIO"})


# ---------------------------------------------------------------------------
# R002 — sanctioned randomness seams
# ---------------------------------------------------------------------------

#: ``path::qualname`` entries allowed to draw module-level randomness.
#: Empty today: every RNG in the repo is a seeded ``random.Random``
#: instance threaded through constructors (the lockstep-replay
#: contract).  Register new seams here, never inline.
RNG_SEAMS: FrozenSet[str] = frozenset()


# ---------------------------------------------------------------------------
# Race detector — sanctioned CRCW races
# ---------------------------------------------------------------------------

#: ``(path, family)`` pairs where concurrent same-step read/write or
#: multi-writer traffic is *the algorithm* (monotone flag marking under
#: a combining policy), not a bug.  Mirrors the dynamic sanitizer's
#: ``sanctioned`` parameter.
SANCTIONED_RACES: FrozenSet[Tuple[str, str]] = frozenset(
    {
        # Theorem 2.1 processor activation: walkers and splitters mark
        # ACTIVE concurrently under WritePolicy.MAX; the flag is
        # monotone (0 -> 1) so every interleaving commits the same
        # memory.  The `low` coverage cells combine under MAX the same
        # way.
        ("src/repro/splitting/activation_pram.py", "active"),
        ("src/repro/splitting/activation_pram.py", "low"),
        # Resilience psum reduction: workers poll their input cells
        # until the (single) writer's value appears.  A read landing in
        # the writer's step observes the pre-write value (None) and
        # simply polls again next step — the cell is write-once, so
        # every interleaving converges on the same sum.
        ("src/repro/resilience/harness.py", "s"),
    }
)


# ---------------------------------------------------------------------------
# R001 — raise-site policy
# ---------------------------------------------------------------------------

#: Builtins a library raise site may still use directly: programming-
#: error signals that the taxonomy deliberately never wraps (errors.py
#: module docstring).
R001_ALLOWED_BUILTINS: FrozenSet[str] = frozenset(
    {"TypeError", "AssertionError", "NotImplementedError"}
)

#: All other builtin exception constructors are forbidden at raise sites.
R001_FORBIDDEN_BUILTINS: FrozenSet[str] = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "KeyError",
        "IndexError",
        "LookupError",
        "RuntimeError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OverflowError",
        "OSError",
        "IOError",
        "StopIteration",
        "AttributeError",
        "NameError",
        "SystemError",
        "BufferError",
        "EOFError",
        "MemoryError",
        "ReferenceError",
        "UnicodeError",
    }
)


# ---------------------------------------------------------------------------
# R201-R204 — interprocedural effect analysis (repro.lint.effects)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EffectEntry:
    """One public batch entry point the R2xx closure checks start from.

    ``class_name`` may name a subclass that merely *inherits* the
    method (``ParallelRBSTS``): entry resolution follows the
    inheritance component, so the closure still includes every
    override the dynamic dispatch could reach.  ``rules`` masks which
    checks apply — the contraction entries run R201 only, because the
    rake-tree's ``RTNode`` reuses the ``left``/``right``/``parent``
    slot names without being snapshot-covered state (admission-only by
    the PR 3 design), which would make every R202 path report a
    non-restorable mutation by name collision.
    """

    path: str
    class_name: str
    method: str
    rules: Tuple[str, ...] = ("R201", "R202")


def _rbsts_entries(path: str, cls: str) -> Tuple[EffectEntry, ...]:
    return tuple(
        EffectEntry(path, cls, m)
        for m in ("batch_insert", "batch_delete", "batch_update_items")
    )


EFFECT_ENTRY_POINTS: Tuple[EffectEntry, ...] = (
    _rbsts_entries("src/repro/splitting/rbsts.py", "RBSTS")
    + _rbsts_entries("src/repro/perf/flat_rbsts.py", "FlatRBSTS")
    + _rbsts_entries("src/repro/perf/parallel/rbsts.py", "ParallelRBSTS")
    + tuple(
        EffectEntry("src/repro/listprefix/structure.py", "IncrementalListPrefix", m)
        for m in ("batch_set", "batch_insert", "batch_delete")
    )
    + tuple(
        EffectEntry(
            "src/repro/contraction/dynamic.py",
            "DynamicTreeContraction",
            m,
            rules=("R201",),
        )
        for m in (
            "batch_set_leaf_values",
            "batch_set_ops",
            "batch_grow",
            "batch_prune",
            "apply_requests",
        )
    )
    + tuple(
        EffectEntry("src/repro/resilience/executor.py", "ResilientListSession", m)
        for m in ("batch_insert", "batch_delete", "batch_set")
    )
    # -- repro.serve (PR 10): the serving layer's decision paths must be
    # as replayable as the structures they drive.  execute_window is the
    # whole batch-apply path (admission, retry-budget, quarantine,
    # breaker) and runs R201 only: its mutations are queue/stats/breaker
    # bookkeeping on the shard object, not snapshot-covered tree state —
    # the tree mutations all happen below _apply_admitted, which gets
    # the full R201+R202 treatment, as does the quarantine prober (its
    # probes subscript the same columns the snapshot layer restores).
    + (
        EffectEntry(
            "src/repro/serve/shard.py", "Shard", "execute_window",
            rules=("R201",),
        ),
        EffectEntry("src/repro/serve/shard.py", "Shard", "_apply_admitted"),
        EffectEntry("src/repro/serve/quarantine.py", "", "quarantine_bisect"),
    )
)

#: ``(path, qualname)`` roots of code that executes inside pool worker
#: processes (R203).  ``_worker_main`` is the whole worker loop: every
#: chunk kernel (``_compose_range``, ``_eval_family``) and slab attach
#: runs under it.
WORKER_KERNEL_ROOTS: Tuple[Tuple[str, str], ...] = (
    ("src/repro/perf/parallel/pool.py", "_worker_main"),
)

#: ``path::qualname`` -> justification for functions that *are* a
#: transaction seam even though no ``_txn_begin`` call appears in their
#: own body.  These are the analysis's higher-order blind spots: the
#: guard sits one call (or one callback indirection) below.
TXN_GUARDS: Dict[str, str] = {
    "src/repro/transactions.py::execute_batch": (
        "every admitted mutation runs via _apply_txn's txn_begin/"
        "rollback/commit bracket; the only direct apply() call is the "
        "empty-strict-batch path, which is mutation-free by admission "
        "(nothing was admitted)"
    ),
}

#: rule -> (owning ``path::qualname`` -> justification).  The effects
#: pass drops a finding when the function *performing* the effect is
#: registered here; keying by owner (not entry) means one entry covers
#: every entry point whose closure reaches the same helper.
EFFECT_ALLOWLIST: Dict[str, Dict[str, str]] = {
    "R201": {
        "src/repro/serve/clock.py::MonotonicClock.now": (
            "the asyncio frontend's wall clock, injected at the event-"
            "loop boundary only — the clock-free sync core takes `now` "
            "as an argument (serve/clock.py docstring).  The one path "
            "the closure reports is a name-collision phantom: the "
            "engine's pool.submit() resolving to BatchService.submit"
        ),
    },
    "R202": {
        "src/repro/perf/flat_rbsts.py::FlatRBSTS.handle": (
            "lazy interning-cache fill (slot -> FlatLeaf) on the "
            "post-commit return path; idempotent and derivable, exempt "
            "from journaling under R004 for the same reason"
        ),
    },
    "R204": {
        "src/repro/resilience/executor.py::ResilientExecutor._heal": (
            "repair failure is deliberately absorbed: the supervisor's "
            "bounded retry (or the degradation ladder) handles state "
            "that cannot be healed in place; the open checkpoint still "
            "rewinds everything the failed repair touched"
        ),
        "src/repro/perf/parallel/engine.py::ParallelEngine._scratch_pair": (
            "scratch slabs are transient per-round compute buffers "
            "rebuilt by the next scan; no logical tree state lives in "
            "them, so rollback has nothing to restore"
        ),
        # -- PRAM simulation state is per-attempt scratch: pram_sum
        # constructs a fresh FaultyMachine inside each supervised
        # attempt, so a rolled-back attempt discards the whole machine
        # and the retry rebuilds it.  No pre-image exists to restore
        # (the R004 _new_node argument, one level up).
        "src/repro/pram/machine.py::Machine.spawn": (
            "mutates the process table of a machine constructed inside "
            "the supervised attempt itself; retry rebuilds the machine"
        ),
        "src/repro/pram/memory.py::SharedMemory.commit": (
            "EREW/CRCW staging buffers of a per-attempt machine; "
            "discarded wholesale with the machine on rollback"
        ),
        "src/repro/resilience/faults.py::FaultySharedMemory.commit": (
            "fault-injecting subclass of SharedMemory.commit; same "
            "per-attempt-machine argument"
        ),
        # -- outcome-classification boundaries: each of these handlers
        # is the last stop of a differential/fuzz/resilience harness
        # whose *job* is to turn any escape (taxonomy included) into a
        # recorded verdict instead of a crash.
        "src/repro/resilience/harness.py::run_resilience_program": (
            "converts an unexpected escape into a failing "
            "ResilienceReport entry — a resilience bug must be "
            "reported by the harness, not crash it"
        ),
        "src/repro/snapshots/fuzz.py::fuzz_one": (
            "crash-injection fuzzing classifies every outcome "
            "(including taxonomy raises) as survive/die/diverge"
        ),
        "src/repro/testing/corpus.py::replay_corpus": (
            "corpus replay records each case's outcome; a raising "
            "case is a red verdict, not a replay abort"
        ),
        "src/repro/testing/executor.py::run_sequence": (
            "the differential executor classifies construction and "
            "per-op failures into verdicts for shrinking"
        ),
        # -- repro.serve (PR 10): the serving layer's contract is that
        # NO payload crashes the service — every escape becomes a typed
        # Response.  Each handler below is such a boundary; the chaos
        # gate's exactly-once/oracle audits are what prove they never
        # misclassify a committed batch.
        "src/repro/serve/quarantine.py::_Prober.probe": (
            "outcome-classification boundary: a probe's only question "
            "is pass/fail — ANY escape (taxonomy included) means the "
            "subset must not commit, and the probe txn is rolled back "
            "unconditionally in the finally"
        ),
        "src/repro/serve/shard.py::Shard.execute_window": (
            "outcome-classification boundary: the phase-apply triage "
            "turns admission mismatches into rejections, exhausted "
            "retries into failed responses, and any other escape into "
            "the quarantine path — a window must answer every request, "
            "never crash the shard worker"
        ),
        "src/repro/serve/shard.py::Shard._quarantine": (
            "outcome-classification boundary: a good-subset re-commit "
            "that fails after bisection downgrades the subset to "
            "failed responses (the supervisor already rolled back); "
            "raising would crash the worker with responses unsent"
        ),
        "src/repro/serve/chaos.py::run_chaos": (
            "the chaos harness's invariant audit records a failing "
            "shard as a red report entry — a robustness bug must be "
            "reported by the gate, not crash it (run_resilience_program "
            "precedent)"
        ),
    },
}


# ---------------------------------------------------------------------------
# the bundle rules receive
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LintConfig:
    parity_pairs: Tuple[ParityPair, ...] = PARITY_PAIRS
    journal_specs: Tuple[JournalSpec, ...] = JOURNAL_SPECS
    snapshot_specs: Tuple[SnapshotSpec, ...] = SNAPSHOT_SPECS
    snapshot_exempt: FrozenSet[str] = SNAPSHOT_EXEMPT
    crash_points_path: str = CRASH_POINTS_PATH
    rng_seams: FrozenSet[str] = RNG_SEAMS
    sanctioned_races: FrozenSet[Tuple[str, str]] = SANCTIONED_RACES
    allowed_builtins: FrozenSet[str] = R001_ALLOWED_BUILTINS
    forbidden_builtins: FrozenSet[str] = R001_FORBIDDEN_BUILTINS
    #: Modules exempt from R005's "must define __all__" requirement
    #: (entry-point shims with no importable surface).
    exports_exempt: FrozenSet[str] = frozenset()
    # -- R201-R204 interprocedural effect analysis ----------------------
    effect_entries: Tuple[EffectEntry, ...] = EFFECT_ENTRY_POINTS
    worker_kernel_roots: Tuple[Tuple[str, str], ...] = WORKER_KERNEL_ROOTS
    txn_guards: Mapping[str, str] = field(
        default_factory=lambda: dict(TXN_GUARDS)
    )
    effect_allowlist: Mapping[str, Mapping[str, str]] = field(
        default_factory=lambda: {
            rule: dict(entries) for rule, entries in EFFECT_ALLOWLIST.items()
        }
    )
    #: Mutation-target universes the R202/R204 coverage cross-check uses:
    #: the same column/field sets the snapshot layer restores.
    effect_columns: FrozenSet[str] = FLAT_SNAPSHOT_COLUMNS
    effect_node_fields: FrozenSet[str] = REFERENCE_SNAPSHOT_FIELDS
    #: Path prefixes whose mutations are the rollback seam itself
    #: (journal/checkpoint bookkeeping) and are not atomized.
    effect_seam_paths: Tuple[str, ...] = ("src/repro/snapshots/",)


REPO_CONFIG = LintConfig()

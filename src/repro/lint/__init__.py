"""repro.lint — invariant-enforcing static analysis for this repo.

An AST rule engine (:mod:`repro.lint.engine`) plus the repo's
registered invariants (:mod:`repro.lint.config`):

* **R001** every raise uses the :mod:`repro.errors` taxonomy;
* **R002** randomness flows through seeded ``random.Random`` seams;
* **R003** the flat backend stays a drop-in twin of the reference;
* **R004** interior mutations are journaled or crash-point hooks;
* **R005** modules declare their export surface via ``__all__``;
* **R101–R103** PRAM step programs obey the synchronous step
  discipline (no same-step stale reads, no ``poke`` inside programs,
  no COMMON-policy writer disagreement).

Run ``python -m repro.lint [--json]``; the repo-clean self-check in
``tests/lint/test_repo_clean.py`` keeps ``src/repro`` at zero findings.
"""

from __future__ import annotations

from .config import JournalSpec, LintConfig, ParityPair, REPO_CONFIG
from .engine import (
    SCHEMA,
    Finding,
    LintReport,
    ModuleInfo,
    RepoContext,
    Rule,
    run_lint,
)
from .rules import default_rules

__all__ = [
    "SCHEMA",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "RepoContext",
    "Rule",
    "run_lint",
    "LintConfig",
    "ParityPair",
    "JournalSpec",
    "REPO_CONFIG",
    "default_rules",
]

"""R101/R102/R103 — PRAM step-discipline race detector.

A PRAM *step program* is a generator yielding ``Read``/``Write``/
``Fork``/``Local``/``Halt`` instructions; one yield costs one
synchronous machine step, reads see the *previous* step's memory, and
writes commit at end-of-step under the machine's CRCW policy.  This
pass reconstructs, per program, which yield events can be simultaneous
across processor instances, and flags the three step-discipline
violations the dynamic sanitizer
(:class:`repro.pram.sanitizer.SanitizingSharedMemory`) catches at run
time:

* **R101 stale read** — some instance may read a cell another instance
  writes in the same step: the reader silently observes the pre-write
  value, which is a data race unless the algorithm is a registered
  monotone-marking pattern
  (:data:`repro.lint.config.SANCTIONED_RACES`).
* **R102 poke in step** — ``poke()`` is the *host-side* backdoor that
  bypasses staging; calling it from inside a step program breaks the
  synchronous commit contract.
* **R103 COMMON disagreement** — under ``WritePolicy.COMMON``
  concurrent writers must agree; two same-step writers whose values are
  not provably equal are a latent ``WriteConflictError``.

Alignment model (how "simultaneous" is decided statically)
----------------------------------------------------------

Instances spawned in the same wave run in lockstep, so yield *k* of
instance A coincides with yield *k* of instance B.  Alignment survives:

* straight-line code — events keyed ``("linear", offset)``;
* ``if``/``else`` whose arms yield equally often (cross-arm events at
  the same offset *are* simultaneous), or where a divergent arm
  terminates (a returned instance emits nothing further);
* ``while`` loops whose body yields uniformly on every continuing path
  and contains no ``break`` — all live instances sit at the same
  body position, so events are keyed ``("loop", id, pos)``.

Alignment is lost (events become comparable with *everything*) after
unequal-yield branches where both sides continue, after
condition-exited loops (an exited instance's post-loop events overlap
others' in-loop events), inside loops containing ``break``, inside
``for`` loops that yield, and for any program started via ``Fork``
(forked processors begin at arbitrary offsets).

Address aliasing: addresses are ``("family", index)`` tuples.  Two
same-family events cannot alias only when their index expressions are
*syntactically identical* and *injective* in a varying spawn parameter
(exactly ``p`` or ``p ± e`` with ``e`` instance-invariant): distinct
instances then touch distinct cells.  Anything weaker — differing
shifts, taint from read results — is conservatively an alias.

Spawn analysis binds programs to machines: ``m = Machine(policy=
WritePolicy.X)`` then ``m.spawn(prog(args...))`` associates ``prog``
with policy ``X``; positional args mentioning an enclosing ``for``
target are the *varying* instance parameters.  ``Fork(prog(...))``
inside a program propagates its group/policy to the forked program with
every parameter varying.  A program never spawned is analyzed alone
with its first parameter assumed varying and no policy (R103 needs a
known ``COMMON`` policy to fire).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .config import LintConfig
from .engine import Finding, ModuleInfo, RepoContext, Rule

__all__ = [
    "StaleReadRule",
    "PokeInStepRule",
    "CommonDisagreementRule",
    "Hazard",
    "analyze_module",
]

_INSTRUCTION_NAMES = frozenset({"Read", "Write", "Fork", "Local", "Halt"})

#: None = unaligned (comparable with every event in the group).
AlignKey = Optional[Tuple[Any, ...]]


@dataclass(frozen=True)
class _Event:
    kind: str  # "read" | "write" | "step" (Local/Fork/unknown)
    family: Optional[str]  # None = statically unknown (matches any)
    index: Optional[ast.expr]
    value: Optional[ast.expr]  # writes only
    align: AlignKey
    node: ast.AST
    program: str


@dataclass
class _ProgramModel:
    name: str
    func: ast.FunctionDef
    params: List[str]
    events: List[_Event] = field(default_factory=list)
    pokes: List[ast.AST] = field(default_factory=list)
    forks: List[str] = field(default_factory=list)
    tainted: Set[str] = field(default_factory=set)
    varying: Set[str] = field(default_factory=set)
    policy: Optional[str] = None
    group: Optional[str] = None
    multi_instance: bool = True
    fork_spawned: bool = False


@dataclass(frozen=True)
class Hazard:
    """One step-discipline violation (pre-rule-filtering)."""

    kind: str  # "stale-read" | "poke-in-step" | "common-disagreement"
    program: str
    family: Optional[str]
    node: ast.AST
    detail: str


# ---------------------------------------------------------------------------
# program discovery
# ---------------------------------------------------------------------------


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function/class
    definitions (their yields/spawns belong to someone else)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_step_program(func: ast.FunctionDef) -> bool:
    """A generator whose own body yields at least one PRAM instruction
    constructor call."""
    for node in _own_nodes(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _INSTRUCTION_NAMES
            ):
                return True
    return False


def _all_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    ]


# ---------------------------------------------------------------------------
# event extraction (the alignment model)
# ---------------------------------------------------------------------------


class _Scanner:
    """Single pass over one program's body, assigning each yield event
    an alignment key per the module docstring's model."""

    def __init__(self, model: _ProgramModel) -> None:
        self.model = model
        self.offset = 0
        self.aligned = True
        self.prefix: Tuple[Any, ...] = ("linear",)
        self.loop_counter = 0

    # -- taint ------------------------------------------------------------
    def _taint_pass(self) -> None:
        """Names whose values vary per-instance beyond the spawn params:
        anything assigned from a yield, a call, a subscript, or an
        already-tainted name.  Two passes close simple chains."""
        tainted = self.model.tainted
        for _ in range(2):
            for node in _own_nodes(self.model.func):
                value: Optional[ast.expr] = None
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, list(node.targets)
                elif isinstance(node, ast.AugAssign):
                    value, targets = node.value, [node.target]
                elif isinstance(node, ast.AnnAssign) and node.value:
                    value, targets = node.value, [node.target]
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    value, targets = node.iter, [node.target]
                if value is None:
                    continue
                if _expr_tainted(value, tainted):
                    for t in targets:
                        for name in _target_names(t):
                            tainted.add(name)

    # -- statement traversal ----------------------------------------------
    def scan(self) -> None:
        self._taint_pass()
        self._stmts(self.model.func.body)

    def _stmts(self, body: Sequence[ast.stmt]) -> bool:
        """Process a statement list; returns False when control cannot
        fall through (ends in return/raise on every path)."""
        for stmt in body:
            if not self._stmt(stmt):
                return False
        return True

    def _stmt(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return False
        if isinstance(stmt, (ast.Break, ast.Continue)):
            # Loops containing these are handled as unaligned wholesale
            # before we recurse here; reaching one just ends the path.
            return False
        if isinstance(stmt, ast.If):
            return self._if(stmt)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt)
        if isinstance(stmt, (ast.With, ast.AsyncWith, ast.Try)):
            # Rare in step programs; conservative: inner events lose
            # alignment, control assumed to continue.
            if _yield_count_upper(stmt) > 0:
                self._emit_region(stmt, aligned=False)
                self.aligned = False
            return True
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return True
        # Simple statement: emit its yields in source order.
        for yield_node in _yields_in(stmt):
            self._emit_yield(yield_node)
        return True

    def _if(self, stmt: ast.If) -> bool:
        base_offset, base_aligned = self.offset, self.aligned

        self.offset, self.aligned = base_offset, base_aligned
        falls_body = self._stmts(stmt.body)
        body_offset, body_aligned = self.offset, self.aligned

        self.offset, self.aligned = base_offset, base_aligned
        falls_else = self._stmts(stmt.orelse) if stmt.orelse else True
        else_offset, else_aligned = self.offset, self.aligned

        if falls_body and falls_else:
            if body_offset == else_offset:
                self.offset = body_offset
                self.aligned = body_aligned and else_aligned
            else:
                # Unequal yield counts, both sides continue: instances
                # desynchronize here.
                self.offset = max(body_offset, else_offset)
                self.aligned = False
            return True
        if falls_body:
            self.offset, self.aligned = body_offset, body_aligned
            return True
        if falls_else:
            self.offset, self.aligned = else_offset, else_aligned
            return True
        return False

    def _while(self, stmt: ast.While) -> bool:
        if _yield_count_upper(stmt) == 0:
            return True  # local-computation loop: zero machine steps
        has_break = any(
            isinstance(n, ast.Break) for n in _own_loop_nodes(stmt)
        )
        uniform, _ = _uniform_count(stmt.body)
        infinite = (
            isinstance(stmt.test, ast.Constant) and stmt.test.value is True
        )
        if has_break or uniform is None or not self.aligned:
            self._emit_region(stmt, aligned=False)
            self.aligned = False
            return True
        # Uniform body, exits only via return (infinite test) or the
        # condition: all live instances share the body position.
        self.loop_counter += 1
        saved_prefix, saved_offset = self.prefix, self.offset
        self.prefix = ("loop", self.loop_counter)
        self.offset = 0
        self._stmts(stmt.body)
        self.prefix, self.offset = saved_prefix, saved_offset
        if infinite:
            return True  # post-loop unreachable
        # Condition exit: leavers overlap stayers from here on.
        self.aligned = False
        return True

    def _for(self, stmt: ast.stmt) -> bool:
        if _yield_count_upper(stmt) == 0:
            return True
        # Iteration counts are data-dependent: conservative.
        self._emit_region(stmt, aligned=False)
        self.aligned = False
        return True

    # -- event emission ---------------------------------------------------
    def _emit_region(self, stmt: ast.AST, *, aligned: bool) -> None:
        assert not aligned
        for yield_node in _yields_in(stmt):
            self._emit_yield(yield_node, force_unaligned=True)

    def _emit_yield(
        self, node: ast.Yield, *, force_unaligned: bool = False
    ) -> None:
        align: AlignKey = None
        if self.aligned and not force_unaligned:
            align = self.prefix + (self.offset,)
        self.offset += 1
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
        ):
            self._append("step", None, None, None, align, node)
            return
        name = value.func.id
        if name == "Read":
            addr = _call_arg(value, 0, "addr")
            family, index = _split_addr(addr)
            self._append("read", family, index, None, align, node)
        elif name == "Write":
            addr = _call_arg(value, 0, "addr")
            wval = _call_arg(value, 1, "value")
            family, index = _split_addr(addr)
            self._append("write", family, index, wval, align, node)
        elif name == "Fork":
            prog = _call_arg(value, 0, "program")
            if (
                isinstance(prog, ast.Call)
                and isinstance(prog.func, ast.Name)
            ):
                self.model.forks.append(prog.func.id)
            self._append("step", None, None, None, align, node)
        else:  # Local / Halt / unknown
            self._append("step", None, None, None, align, node)

    def _append(
        self,
        kind: str,
        family: Optional[str],
        index: Optional[ast.expr],
        value: Optional[ast.expr],
        align: AlignKey,
        node: ast.AST,
    ) -> None:
        self.model.events.append(
            _Event(kind, family, index, value, align, node, self.model.name)
        )


# -- small AST utilities ------------------------------------------------


def _yields_in(stmt: ast.AST) -> List[ast.Yield]:
    out: List[ast.Yield] = []
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop(0)  # breadth-ish; single-yield stmts dominate
        if isinstance(node, ast.Yield):
            out.append(node)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    out.sort(key=lambda n: (n.lineno, n.col_offset))
    return out


def _yield_count_upper(stmt: ast.AST) -> int:
    return len(_yields_in(stmt))


def _own_loop_nodes(loop: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a loop body excluding nested loops' bodies (their
    break/continue bind to the inner loop)."""
    stack: List[ast.AST] = []
    for part in ("body", "orelse"):
        stack.extend(getattr(loop, part, []) or [])
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (
                ast.While,
                ast.For,
                ast.AsyncFor,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
            ),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _uniform_count(body: Sequence[ast.stmt]) -> Tuple[Optional[int], bool]:
    """(yields on every fall-through path or None when they differ,
    does-any-path-fall-through)."""
    total = 0
    for stmt in body:
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            return total, False
        if isinstance(stmt, ast.If):
            c1, f1 = _uniform_count(stmt.body)
            c2, f2 = _uniform_count(stmt.orelse) if stmt.orelse else (0, True)
            if f1 and f2:
                if c1 is None or c2 is None or c1 != c2:
                    return None, True
                total += c1
            elif f1:
                if c1 is None:
                    return None, True
                total += c1
            elif f2:
                if c2 is None:
                    return None, True
                total += c2
            else:
                return total, False
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if _yield_count_upper(stmt) > 0:
                return None, True  # nested yielding loop: not uniform
        elif isinstance(stmt, (ast.With, ast.AsyncWith, ast.Try)):
            if _yield_count_upper(stmt) > 0:
                return None, True
        else:
            total += _yield_count_upper(stmt)
    return total, True


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


def _expr_tainted(expr: ast.expr, tainted: Set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Call, ast.Subscript)):
            return True
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
    return False


def _call_arg(
    call: ast.Call, pos: int, kw: str
) -> Optional[ast.expr]:
    if len(call.args) > pos:
        return call.args[pos]
    for keyword in call.keywords:
        if keyword.arg == kw:
            return keyword.value
    return None


def _split_addr(
    addr: Optional[ast.expr],
) -> Tuple[Optional[str], Optional[ast.expr]]:
    """``("family", index)`` from an address expression."""
    if addr is None:
        return None, None
    if isinstance(addr, ast.Tuple) and addr.elts:
        head = addr.elts[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            index = addr.elts[1] if len(addr.elts) == 2 else addr
            return head.value, index
        return None, addr
    if isinstance(addr, ast.Constant):
        return str(addr.value), None
    return None, addr


# ---------------------------------------------------------------------------
# spawn / machine association
# ---------------------------------------------------------------------------


def _associate_spawns(
    module: ModuleInfo, programs: Dict[str, _ProgramModel]
) -> None:
    """Bind each program to (group, policy, varying params,
    multi-instance) from its ``machine.spawn(prog(...))`` sites."""
    spawn_counts: Dict[str, int] = {}
    spawn_in_loop: Dict[str, bool] = {}

    for host in _all_functions(module.tree):
        if host.name in programs:
            continue
        policies = _machine_policies(host)
        for node in _own_nodes(host):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "spawn"
                and isinstance(node.func.value, ast.Name)
                and node.args
            ):
                continue
            prog_call = node.args[0]
            if not (
                isinstance(prog_call, ast.Call)
                and isinstance(prog_call.func, ast.Name)
                and prog_call.func.id in programs
            ):
                continue
            model = programs[prog_call.func.id]
            machine_name = node.func.value.id
            model.group = (
                f"{module.relpath}::{host.name}::{machine_name}"
            )
            if model.policy is None:
                model.policy = policies.get(machine_name)
            loop_vars = _enclosing_loop_targets(module, node, host)
            in_loop = bool(loop_vars)
            spawn_counts[model.name] = spawn_counts.get(model.name, 0) + 1
            spawn_in_loop[model.name] = (
                spawn_in_loop.get(model.name, False) or in_loop
            )
            for i, arg in enumerate(prog_call.args):
                if i >= len(model.params):
                    break
                names = {
                    n.id
                    for n in ast.walk(arg)
                    if isinstance(n, ast.Name)
                }
                if names & loop_vars:
                    model.varying.add(model.params[i])

    # Fork propagation: forked programs inherit group/policy, run from
    # arbitrary offsets, and every parameter varies.
    for _ in range(len(programs) + 1):
        changed = False
        for model in programs.values():
            for target_name in model.forks:
                target = programs.get(target_name)
                if target is None:
                    continue
                if not target.fork_spawned:
                    target.fork_spawned = True
                    changed = True
                if target.group is None and model.group is not None:
                    target.group = model.group
                    changed = True
                if target.policy is None and model.policy is not None:
                    target.policy = model.policy
                    changed = True
                new_varying = set(target.params) - target.varying
                if new_varying:
                    target.varying.update(new_varying)
                    changed = True
        if not changed:
            break

    for model in programs.values():
        if model.group is None:
            # Never spawned: analyze alone, first param assumed varying.
            model.group = f"{module.relpath}::{model.name}"
            if model.params and not model.varying:
                model.varying.add(model.params[0])
        elif not model.fork_spawned:
            if not spawn_in_loop.get(model.name, False) and (
                spawn_counts.get(model.name, 0) == 1
            ):
                model.multi_instance = False
            if model.params and not model.varying and model.multi_instance:
                model.varying.add(model.params[0])


def _machine_policies(host: ast.FunctionDef) -> Dict[str, str]:
    """``{machine_var: "PRIORITY", ...}`` from
    ``m = Machine(policy=WritePolicy.X, ...)`` assignments."""
    out: Dict[str, str] = {}
    for node in _own_nodes(host):
        if not (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "Machine"
        ):
            continue
        policy: Optional[str] = None
        for kw in node.value.keywords:
            if (
                kw.arg == "policy"
                and isinstance(kw.value, ast.Attribute)
                and isinstance(kw.value.value, ast.Name)
                and kw.value.value.id == "WritePolicy"
            ):
                policy = kw.value.attr
        for target in node.targets:
            if isinstance(target, ast.Name) and policy is not None:
                out[target.id] = policy
    return out


def _enclosing_loop_targets(
    module: ModuleInfo, node: ast.AST, host: ast.FunctionDef
) -> Set[str]:
    """For-loop target names on the parent chain from ``node`` up to
    (and excluding) ``host``."""
    out: Set[str] = set()
    cur: Optional[ast.AST] = node
    while cur is not None and cur is not host:
        if isinstance(cur, (ast.For, ast.AsyncFor)):
            out.update(_target_names(cur.target))
        cur = module.parents.get(cur)
    return out


# ---------------------------------------------------------------------------
# hazard computation
# ---------------------------------------------------------------------------


def analyze_module(
    module: ModuleInfo, config: LintConfig
) -> List[Hazard]:
    """All step-discipline hazards in one module (pre-sanction
    filtering is applied here; R102 pokes are never sanctionable)."""
    programs: Dict[str, _ProgramModel] = {}
    for func in _all_functions(module.tree):
        if not _is_step_program(func):
            continue
        model = _ProgramModel(
            name=func.name,
            func=func,
            params=[a.arg for a in func.args.posonlyargs + func.args.args],
        )
        programs[func.name] = model
    if not programs:
        return []

    _associate_spawns(module, programs)
    for model in programs.values():
        _Scanner(model).scan()
        for node in _own_nodes(model.func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "poke"
            ):
                model.pokes.append(node)

    hazards: List[Hazard] = []
    for model in programs.values():
        for poke in model.pokes:
            hazards.append(
                Hazard(
                    kind="poke-in-step",
                    program=model.name,
                    family=None,
                    node=poke,
                    detail=(
                        f"step program {model.name!r} calls poke(), "
                        "bypassing staged end-of-step commit; stage a "
                        "Write instead (poke is host-side only)"
                    ),
                )
            )

    groups: Dict[str, List[_ProgramModel]] = {}
    for model in programs.values():
        groups.setdefault(model.group or model.name, []).append(model)
    sanctioned = {
        fam for path, fam in config.sanctioned_races
        if path == module.relpath
    }
    for members in groups.values():
        hazards.extend(_group_hazards(members, sanctioned))
    return hazards


def _group_hazards(
    members: List[_ProgramModel], sanctioned: Set[str]
) -> Iterator[Hazard]:
    by_name = {m.name: m for m in members}
    events = [e for m in members for e in m.events]
    writes = [e for e in events if e.kind == "write"]
    reads = [e for e in events if e.kind == "read"]
    policy = next(
        (m.policy for m in members if m.policy is not None), None
    )
    seen: Set[Tuple[str, str, int, Optional[str]]] = set()

    def emit(
        kind: str, victim: _Event, other: _Event, detail: str
    ) -> Iterator[Hazard]:
        key = (kind, victim.program, victim.node.lineno, victim.family)
        if key in seen:
            return
        seen.add(key)
        yield Hazard(
            kind=kind,
            program=victim.program,
            family=victim.family,
            node=victim.node,
            detail=detail,
        )

    for w in writes:
        wm = by_name[w.program]
        for r in reads:
            rm = by_name[r.program]
            if not _may_conflict(w, wm, r, rm, sanctioned):
                continue
            yield from emit(
                "stale-read",
                r,
                w,
                f"read of family {r.family or '?'!r} in {r.program!r} "
                f"may land in the same step as the write in "
                f"{w.program!r} (line {w.node.lineno}); the reader "
                "observes the pre-write value — restructure so the "
                "read happens a step earlier/later, or register the "
                "monotone-marking family in "
                "repro.lint.config.SANCTIONED_RACES",
            )
        if policy != "COMMON":
            continue
        for w2 in writes:
            if (w2.node.lineno, w2.program) < (w.node.lineno, w.program):
                continue  # unordered pairs once (self-pair included)
            w2m = by_name[w2.program]
            if not _may_conflict(w, wm, w2, w2m, sanctioned, writes=True):
                continue
            if _values_agree(w, wm, w2, w2m):
                continue
            yield from emit(
                "common-disagreement",
                w,
                w2,
                f"family {w.family or '?'!r}: concurrent same-step "
                f"writers ({w.program!r} line {w.node.lineno}, "
                f"{w2.program!r} line {w2.node.lineno}) under "
                "WritePolicy.COMMON with values not provably equal — "
                "a latent WriteConflictError",
            )


def _may_conflict(
    a: _Event,
    am: _ProgramModel,
    b: _Event,
    bm: _ProgramModel,
    sanctioned: Set[str],
    *,
    writes: bool = False,
) -> bool:
    if a is b and not writes:
        return False
    # family compatibility (None = unknown, matches anything)
    if a.family is not None and b.family is not None and a.family != b.family:
        return False
    fam = a.family if a.family is not None else b.family
    if fam is not None and fam in sanctioned:
        return False
    same_program = am is bm
    if same_program and not am.multi_instance:
        # A single processor executes one yield per step: no pair of
        # its own events (including an event with itself) can coincide.
        return False
    # simultaneity
    a_align = None if am.fork_spawned else a.align
    b_align = None if bm.fork_spawned else b.align
    if (
        same_program
        and a_align is not None
        and b_align is not None
        and a_align != b_align
    ):
        return False  # provably different steps
    # aliasing
    return _may_alias(a, am, b, bm)


def _may_alias(
    a: _Event, am: _ProgramModel, b: _Event, bm: _ProgramModel
) -> bool:
    if a.index is None or b.index is None:
        # fixed cell vs fixed cell of the same family, or unknown
        return True
    da, db = ast.dump(a.index), ast.dump(b.index)
    if da != db or am is not bm:
        # Differing index forms, or the same form in two different
        # programs (whose instance spaces may overlap): conservative.
        return True
    # Identical forms in the same program: distinct instances touch
    # distinct cells iff the index is injective in a varying param.
    return not _injective(a.index, am)


def _injective(index: ast.expr, model: _ProgramModel) -> bool:
    """Index is exactly ``p`` or ``p ± e`` / ``e + p`` with ``p`` a
    varying param and ``e`` instance-invariant (no varying / tainted
    names, no calls)."""

    def invariant(expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Call, ast.Subscript, ast.Yield)):
                return False
            if isinstance(node, ast.Name) and (
                node.id in model.varying or node.id in model.tainted
            ):
                return False
        return True

    def is_varying_name(expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Name)
            and expr.id in model.varying
            and expr.id not in model.tainted
        )

    if is_varying_name(index):
        return True
    if isinstance(index, ast.BinOp) and isinstance(
        index.op, (ast.Add, ast.Sub)
    ):
        left, right = index.left, index.right
        if is_varying_name(left) and invariant(right):
            return True
        if (
            isinstance(index.op, ast.Add)
            and is_varying_name(right)
            and invariant(left)
        ):
            return True
    return False


def _values_agree(
    a: _Event, am: _ProgramModel, b: _Event, bm: _ProgramModel
) -> bool:
    va, vb = a.value, b.value
    if va is None or vb is None:
        return False
    if (
        isinstance(va, ast.Constant)
        and isinstance(vb, ast.Constant)
        and type(va.value) is type(vb.value)
        and va.value == vb.value
    ):
        return True
    if ast.dump(va) == ast.dump(vb) and am is bm:
        # Identical expression over instance-invariant names only.
        free = {
            n.id for n in ast.walk(va) if isinstance(n, ast.Name)
        }
        if not (free & (am.varying | am.tainted)) and not any(
            isinstance(n, (ast.Call, ast.Yield)) for n in ast.walk(va)
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# rule adapters
# ---------------------------------------------------------------------------


class _RaceRuleBase(Rule):
    kind = ""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, ctx: RepoContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in ctx:
            for hazard in analyze_module(module, self.config):
                if hazard.kind != self.kind:
                    continue
                findings.append(
                    self.finding(module, hazard.node, hazard.detail)
                )
        return findings


class StaleReadRule(_RaceRuleBase):
    id = "R101"
    title = "same-step read/write race (stale read)"
    level = "error"
    kind = "stale-read"


class PokeInStepRule(_RaceRuleBase):
    id = "R102"
    title = "poke() inside a step program"
    level = "error"
    kind = "poke-in-step"


class CommonDisagreementRule(_RaceRuleBase):
    id = "R103"
    title = "COMMON-policy same-step writer disagreement"
    level = "error"
    kind = "common-disagreement"

"""File-hash-keyed summary cache for incremental effect runs.

The expensive half of the analysis is per-file extraction
(``ast.parse`` + the ordered body scan); linking and propagation are
cheap.  So the cache persists one :class:`ModuleSummary` per file keyed
by the sha256 of its *content* — a warm run re-hashes every target
(fast), loads summaries for unchanged files without parsing, and
re-extracts only what actually changed.  The cache also records a
fingerprint of the extraction spec (column/field universes, seam
prefixes): a config change invalidates everything, because summaries
are spec-dependent.

The cache lives at ``<root>/.lint-cache/effects.json`` (gitignored) and
is best-effort throughout: unreadable or stale entries degrade to a
cold extraction, never to an error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from .model import ModuleSummary

__all__ = ["SummaryCache", "cache_path"]

_CACHE_SCHEMA = "repro-effects-cache/1"


def cache_path(root: Path) -> Path:
    return root / ".lint-cache" / "effects.json"


class SummaryCache:
    """Load/store module summaries keyed by content hash."""

    def __init__(self, path: Path, spec_fingerprint: str) -> None:
        self.path = path
        self.spec_fingerprint = spec_fingerprint
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("schema") != _CACHE_SCHEMA:
            return
        if raw.get("spec") != self.spec_fingerprint:
            return
        files = raw.get("files")
        if isinstance(files, dict):
            self._entries = {
                str(k): v for k, v in files.items() if isinstance(v, dict)
            }

    def lookup(self, relpath: str, sha256: str) -> Optional[ModuleSummary]:
        entry = self._entries.get(relpath)
        if entry is None or entry.get("sha256") != sha256:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_json(entry["summary"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(self, summary: ModuleSummary) -> None:
        self._entries[summary.relpath] = {
            "sha256": summary.sha256,
            "summary": summary.to_json(),
        }

    def flush(self, live: Mapping[str, ModuleSummary]) -> None:
        """Persist, dropping entries for files no longer targeted."""
        files = {
            relpath: self._entries[relpath]
            for relpath in live
            if relpath in self._entries
        }
        payload = {
            "schema": _CACHE_SCHEMA,
            "spec": self.spec_fingerprint,
            "files": files,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass

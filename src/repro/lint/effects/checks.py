"""The R2xx rule family: path-sensitive checks over the effect graph.

* **R201** — no unsanctioned nondeterminism (module-level RNG, wall
  clock, set iteration) reachable from a public batch entry point.
  Sanctioned draws through the seeded ``rng`` seam are ``rng`` atoms and
  never findings here; this lifts rule R002 from call *sites* to call
  *paths* (the paper's RNG-parity claim needs the whole batch closure
  deterministic, not just the entry function).
* **R202** — every mutation effect reachable from a batch entry point
  is dominated by a snapshot/journal seam: a transaction bracket
  (``_txn_begin``, rule R004's journal references, a registered
  ``TXN_GUARDS`` seam) must sit on *every* call path from the entry to
  the store.  Findings are cross-checked against the snapshot coverage
  universe so the message says whether the escaping state is even
  restorable.
* **R203** — worker purity: code reachable from the parallel engine's
  chunk kernels may only write slab columns; RNG draws (even
  sanctioned), process spawns, persistence and node/non-slab mutation
  are all findings.  This is the static companion to the EREW commit
  barrier — a worker whose closure is pure cannot race the round's
  exclusive-write audit.
* **R204** — transaction discipline: (a) mutations inside a
  ``txn_begin``…commit bracket that target state outside the snapshot
  coverage universe (rollback would silently lose them); (b) ``except``
  handlers broad enough to swallow the ``ReproError`` taxonomy without
  re-raising.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..engine import Finding
from .graph import EffectGraph, SourcedAtom
from .model import (
    KIND_GLOBAL_RNG,
    KIND_IO,
    KIND_MUT_COL,
    KIND_MUT_NODE,
    KIND_MUT_OTHER,
    KIND_RNG,
    KIND_SPAWN,
    NONDET_KINDS,
    Atom,
    ModuleSummary,
)

__all__ = ["EffectPolicy", "run_checks"]

_WORKER_FORBIDDEN = frozenset(
    {
        KIND_RNG,
        KIND_GLOBAL_RNG,
        KIND_SPAWN,
        KIND_IO,
        KIND_MUT_NODE,
        KIND_MUT_OTHER,
    }
)


class EffectPolicy:
    """The slice of :class:`repro.lint.config.LintConfig` the R2xx
    checks consume (kept separate so fixture tests can build one without
    touching the repo registry)."""

    def __init__(
        self,
        entries: Sequence[Tuple[str, str, str, Tuple[str, ...]]],
        worker_roots: Sequence[Tuple[str, str]],
        txn_guards: Mapping[str, str],
        allowlist: Mapping[str, Mapping[str, str]],
        columns: FrozenSet[str],
        node_fields: FrozenSet[str],
    ) -> None:
        self.entries = tuple(entries)
        self.worker_roots = tuple(worker_roots)
        self.txn_guards = dict(txn_guards)
        self.allowlist = {r: dict(m) for r, m in allowlist.items()}
        self.columns = columns
        self.node_fields = node_fields


def run_checks(
    graph: EffectGraph,
    modules: Mapping[str, ModuleSummary],
    policy: EffectPolicy,
) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_check_r201(graph, policy))
    findings.extend(_check_r202(graph, policy))
    findings.extend(_check_r203(graph, policy))
    findings.extend(_check_r204(graph, policy))
    kept: List[Finding] = []
    for f in findings:
        mod = modules.get(f.path)
        if mod is not None and mod.suppressed(f.rule, f.line):
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def _allowed(
    policy: EffectPolicy, rule: str, owner_fid: str
) -> bool:
    return owner_fid in policy.allowlist.get(rule, {})


def _finding(
    rule: str, path: str, line: int, message: str
) -> Finding:
    return Finding(
        rule=rule, level="error", path=path, line=line, col=0, message=message
    )


def _owner_path(owner_fid: str) -> Tuple[str, str]:
    path, _, qual = owner_fid.partition("::")
    return path, qual


def _entry_fid(
    graph: EffectGraph,
    entry: Tuple[str, str, str, Tuple[str, ...]],
) -> Optional[str]:
    path, class_name, method, _rules = entry
    return graph.find_entry(path, class_name, method)


def _entry_label(entry: Tuple[str, str, str, Tuple[str, ...]]) -> str:
    path, class_name, method, _rules = entry
    return f"{class_name}.{method}" if class_name else method


# ---------------------------------------------------------------------------
# R201 — nondeterminism closure
# ---------------------------------------------------------------------------


def _check_r201(
    graph: EffectGraph, policy: EffectPolicy
) -> List[Finding]:
    out: List[Finding] = []
    seen: Dict[Tuple[str, Atom], Tuple[str, List[str]]] = {}
    for entry in policy.entries:
        if "R201" not in entry[3]:
            continue
        fid = _entry_fid(graph, entry)
        if fid is None:
            out.append(
                _finding(
                    "R201",
                    entry[0],
                    0,
                    f"configured entry point {_entry_label(entry)} not "
                    "found (registry drift)",
                )
            )
            continue
        pred = graph.reachable([fid])
        for owner, atom in graph.atoms_in(pred, NONDET_KINDS):
            key = (owner, atom)
            if key in seen:
                continue
            seen[key] = (_entry_label(entry), graph.path_to(pred, owner))
    for (owner, atom), (entry_name, chain) in seen.items():
        if _allowed(policy, "R201", owner):
            continue
        path, qual = _owner_path(owner)
        what = {
            "global-rng": "module-level randomness",
            "time": "wall-clock read",
            "set-iter": "set iteration (hash-order nondeterminism)",
        }.get(atom.kind, atom.kind)
        out.append(
            _finding(
                "R201",
                path,
                atom.line,
                f"{what} ({atom.detail}) in {qual} is reachable from "
                f"batch entry point {entry_name} "
                f"(via {' -> '.join(chain)}); route determinism through "
                "the sanctioned rng seam or sort before iterating",
            )
        )
    return out


# ---------------------------------------------------------------------------
# R202 — mutation dominated by a snapshot/journal seam
# ---------------------------------------------------------------------------


def _check_r202(
    graph: EffectGraph, policy: EffectPolicy
) -> List[Finding]:
    out: List[Finding] = []
    guard_fids = frozenset(policy.txn_guards)
    exposed = graph.exposed_mutations(guard_fids)
    seen: Set[Tuple[str, Atom]] = set()
    for entry in policy.entries:
        if "R202" not in entry[3]:
            continue
        fid = _entry_fid(graph, entry)
        if fid is None:
            out.append(
                _finding(
                    "R202",
                    entry[0],
                    0,
                    f"configured entry point {_entry_label(entry)} not "
                    "found (registry drift)",
                )
            )
            continue
        for owner, atom in sorted(exposed.get(fid, frozenset())):
            key = (owner, atom)
            if key in seen:
                continue
            seen.add(key)
            if _allowed(policy, "R202", owner):
                continue
            path, qual = _owner_path(owner)
            chain = graph.unguarded_path(fid, owner, guard_fids)
            if atom.kind == KIND_MUT_COL and atom.detail in policy.columns:
                coverage = "snapshot-covered, so a seam would restore it"
            elif (
                atom.kind == KIND_MUT_NODE
                and atom.detail in policy.node_fields
            ):
                coverage = "snapshot-covered, so a seam would restore it"
            else:
                coverage = (
                    "OUTSIDE the snapshot coverage universe — no seam "
                    "could restore it"
                )
            out.append(
                _finding(
                    "R202",
                    path,
                    atom.line,
                    f"mutation {atom.kind}:{atom.detail} in {qual} is "
                    f"reachable from batch entry point "
                    f"{_entry_label(entry)} with no snapshot/journal "
                    f"seam on the path {' -> '.join(chain)}; the state "
                    f"is {coverage}",
                )
            )
    return out


# ---------------------------------------------------------------------------
# R203 — worker purity
# ---------------------------------------------------------------------------


def _check_r203(
    graph: EffectGraph, policy: EffectPolicy
) -> List[Finding]:
    out: List[Finding] = []
    for path, qual in policy.worker_roots:
        fid = f"{path}::{qual}"
        if fid not in graph.functions:
            out.append(
                _finding(
                    "R203",
                    path,
                    0,
                    f"configured worker kernel root {qual} not found "
                    "(registry drift)",
                )
            )
            continue
        pred = graph.reachable([fid])
        for owner, atom in graph.atoms_in(pred, _WORKER_FORBIDDEN):
            if _allowed(policy, "R203", owner):
                continue
            opath, oqual = _owner_path(owner)
            out.append(
                _finding(
                    "R203",
                    opath,
                    atom.line,
                    f"impure effect {atom.kind}:{atom.detail} in {oqual} "
                    f"is reachable from worker kernel {qual} "
                    f"(via {' -> '.join(graph.path_to(pred, owner))}); "
                    "worker closures may only write slab columns",
                )
            )
    return out


# ---------------------------------------------------------------------------
# R204 — transaction discipline
# ---------------------------------------------------------------------------


def _check_r204(
    graph: EffectGraph, policy: EffectPolicy
) -> List[Finding]:
    out: List[Finding] = []
    # (a) rollback coverage of txn regions.
    for fid, fn in sorted(graph.functions.items()):
        if not fn.opens_txn:
            continue
        for owner, atom in graph.txn_region_atoms(fid):
            covered = (
                atom.kind == KIND_MUT_COL and atom.detail in policy.columns
            ) or (
                atom.kind == KIND_MUT_NODE
                and atom.detail in policy.node_fields
            )
            if covered or atom.kind not in (
                KIND_MUT_OTHER,
                KIND_MUT_COL,
                KIND_MUT_NODE,
            ):
                continue
            if _allowed(policy, "R204", owner):
                continue
            opath, oqual = _owner_path(owner)
            out.append(
                _finding(
                    "R204",
                    opath,
                    atom.line,
                    f"mutation {atom.kind}:{atom.detail} in {oqual} runs "
                    f"inside the transaction opened by {fn.qualname} "
                    f"({fn.path}:{fn.txn_line}) but targets state outside "
                    "the snapshot coverage universe — rollback would "
                    "silently lose it",
                )
            )
    # (b) taxonomy swallows.
    for fid, fn in sorted(graph.functions.items()):
        for handler in fn.handlers:
            if not handler.broad or handler.reraises:
                continue
            if _allowed(policy, "R204", fid):
                continue
            caught = ", ".join(handler.types) if handler.types else "bare"
            out.append(
                _finding(
                    "R204",
                    fn.path,
                    handler.line,
                    f"except handler ({caught}) in {fn.qualname} swallows "
                    "the ReproError taxonomy without re-raising; narrow "
                    "the catch or register a justified allowlist entry",
                )
            )
    return out

"""Interprocedural effect & determinism analysis (rules R201-R204).

Pipeline: :mod:`extract` turns each source file into a cacheable
:class:`~repro.lint.effects.model.ModuleSummary` of per-function effect
atoms and call descriptors; :mod:`graph` links them into a call graph
(inheritance-component ``self`` dispatch, duck-typed seams, callback
edges) and computes reachability / guard-exposure fixpoints;
:mod:`checks` runs the R2xx rules; :mod:`report` drives the whole pass
and emits the ``repro-effects/1`` document.  Entry points, worker
kernel roots, transaction guards and justified allowlists are
registered in :mod:`repro.lint.config`, same as every other rule's
exemptions.
"""

from .model import (
    Atom,
    CallDesc,
    FunctionSummary,
    Handler,
    ModuleSummary,
)
from .extract import ExtractionSpec, extract_module, file_sha256
from .graph import EffectGraph
from .checks import EffectPolicy, run_checks
from .report import EFFECTS_SCHEMA, EffectsReport, run_effects

__all__ = [
    "Atom",
    "CallDesc",
    "FunctionSummary",
    "Handler",
    "ModuleSummary",
    "ExtractionSpec",
    "extract_module",
    "file_sha256",
    "EffectGraph",
    "EffectPolicy",
    "run_checks",
    "EFFECTS_SCHEMA",
    "EffectsReport",
    "run_effects",
]

"""Data model for the interprocedural effect analysis (R201-R204).

Everything here is a plain, JSON-round-trippable value object: the
per-file extraction (:mod:`repro.lint.effects.extract`) produces one
:class:`ModuleSummary` per source file, the cache
(:mod:`repro.lint.effects.cache`) persists them keyed by content hash,
and the call-graph/propagation layer (:mod:`repro.lint.effects.graph`)
consumes them without ever re-reading source.  That round-trip is the
whole point of the shape: a warm run must be able to skip ``ast.parse``
entirely.

The effect lattice is a set of *atoms* — ``(kind, detail, line)``
triples attached to the function whose body performs them:

===============  ============================================================
kind             meaning
===============  ============================================================
``rng``          draw/seed on a *sanctioned* generator (a seeded
                 ``random.Random`` threaded through ``self._rng`` /
                 a local alias of it)
``global-rng``   module-level randomness (``random.random()``, unseeded
                 ``Random()``, ``os.urandom``, ``secrets``, ``uuid4``)
``time``         wall-clock reads (``time.time``/``monotonic``/…)
``set-iter``     iteration over a ``set``-typed expression (order is
                 hash-dependent, so any derived sequence is
                 nondeterministic across runs/platforms)
``mut-node``     attribute store to a reference-backend node field
``mut-col``      subscript store / list-mutator call on a flat-backend
                 column container
``mut-other``    subscript store / list-mutator call on some *other*
                 private container — state no snapshot restores
``io``           persistence (``open``, ``os.replace``/``rename``/…,
                 ``Path.write_*``)
``spawn``        process machinery (``get_context``, ``ctx.Process``,
                 ``ctx.Pipe``)
``raise``        a raise site, detail = exception type name
===============  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

__all__ = [
    "KIND_RNG",
    "KIND_GLOBAL_RNG",
    "KIND_TIME",
    "KIND_SET_ITER",
    "KIND_MUT_NODE",
    "KIND_MUT_COL",
    "KIND_MUT_OTHER",
    "KIND_IO",
    "KIND_SPAWN",
    "KIND_RAISE",
    "NONDET_KINDS",
    "MUT_KINDS",
    "Atom",
    "CallDesc",
    "Handler",
    "FunctionSummary",
    "ModuleSummary",
]

KIND_RNG = "rng"
KIND_GLOBAL_RNG = "global-rng"
KIND_TIME = "time"
KIND_SET_ITER = "set-iter"
KIND_MUT_NODE = "mut-node"
KIND_MUT_COL = "mut-col"
KIND_MUT_OTHER = "mut-other"
KIND_IO = "io"
KIND_SPAWN = "spawn"
KIND_RAISE = "raise"

#: Kinds R201 reports when reachable from a batch entry point.
NONDET_KINDS = frozenset({KIND_GLOBAL_RNG, KIND_TIME, KIND_SET_ITER})

#: Kinds R202/R204 treat as state mutation.
MUT_KINDS = frozenset({KIND_MUT_NODE, KIND_MUT_COL, KIND_MUT_OTHER})


@dataclass(frozen=True)
class Atom:
    """One effect performed directly by a function body."""

    kind: str
    detail: str
    line: int

    def to_json(self) -> List[Any]:
        return [self.kind, self.detail, self.line]

    @staticmethod
    def from_json(data: List[Any]) -> "Atom":
        return Atom(str(data[0]), str(data[1]), int(data[2]))


@dataclass(frozen=True)
class CallDesc:
    """One outgoing call site, pre-resolution.

    ``kind`` is how the callee was spelled:

    * ``"self"`` — ``self.m(...)`` (resolve across the receiver class's
      inheritance component, so the reference→flat→parallel subclass
      shims dispatch to every override);
    * ``"name"`` — ``f(...)`` (resolve against nested defs, module
      functions, from-imports, then classes → ``__init__``);
    * ``"class"`` — ``ClassName.m(...)``;
    * ``"mod"``  — ``alias.f(...)`` where ``alias`` imports a module;
    * ``"duck"`` — ``<expr>.m(...)`` (resolve to every analyzed class
      defining ``m`` — the ``tree: Any`` seams force this).

    ``callbacks`` are ``(kind, name)`` hints for function references
    passed *as arguments* (``self.m`` / a local ``def``): the linker
    attaches them as edges from the **resolved callee** — a callback run
    inside ``execute_batch`` executes under *its* transaction, not the
    caller's.
    """

    kind: str
    owner: str  # class/module qualifier ("" unless kind is class/mod)
    name: str
    line: int
    callbacks: Tuple[Tuple[str, str], ...] = ()

    def to_json(self) -> List[Any]:
        return [
            self.kind,
            self.owner,
            self.name,
            self.line,
            [list(cb) for cb in self.callbacks],
        ]

    @staticmethod
    def from_json(data: List[Any]) -> "CallDesc":
        return CallDesc(
            str(data[0]),
            str(data[1]),
            str(data[2]),
            int(data[3]),
            tuple((str(k), str(n)) for k, n in data[4]),
        )


@dataclass(frozen=True)
class Handler:
    """One ``except`` clause (for R204's swallow check)."""

    line: int
    types: Tuple[str, ...]  # caught type names; () for a bare except
    broad: bool  # bare / BaseException / Exception / ReproError
    reraises: bool  # handler body contains a raise

    def to_json(self) -> List[Any]:
        return [self.line, list(self.types), self.broad, self.reraises]

    @staticmethod
    def from_json(data: List[Any]) -> "Handler":
        return Handler(
            int(data[0]),
            tuple(str(t) for t in data[1]),
            bool(data[2]),
            bool(data[3]),
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Local (intraprocedural) effect signature of one function.

    ``qualname`` uses ``Class.method`` for methods and
    ``outer.<locals>.inner`` for nested defs; ``class_name`` is the
    *innermost enclosing class* ("" for plain functions), which is what
    ``self.``-call resolution dispatches on.  ``txn_line`` is the line
    of the first ``_txn_begin``/``txn_begin`` call (0 when none):
    functions with ``txn_line`` are *guards* for R202 and open the
    R204 rollback-coverage region.  ``journal_seam`` mirrors rule
    R004's convention — a body that references ``self._journal`` /
    ``journal`` records its own pre-images, so its *own* mutations are
    covered even outside a transaction bracket.
    """

    path: str
    qualname: str
    class_name: str
    name: str
    lineno: int
    atoms: Tuple[Atom, ...] = ()
    calls: Tuple[CallDesc, ...] = ()
    txn_line: int = 0
    journal_seam: bool = False
    handlers: Tuple[Handler, ...] = ()

    @property
    def opens_txn(self) -> bool:
        return self.txn_line > 0

    @property
    def fid(self) -> str:
        """Stable graph/allowlist key: ``path::qualname``."""
        return f"{self.path}::{self.qualname}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "class_name": self.class_name,
            "name": self.name,
            "lineno": self.lineno,
            "atoms": [a.to_json() for a in self.atoms],
            "calls": [c.to_json() for c in self.calls],
            "txn_line": self.txn_line,
            "journal_seam": self.journal_seam,
            "handlers": [h.to_json() for h in self.handlers],
        }

    @staticmethod
    def from_json(path: str, data: Mapping[str, Any]) -> "FunctionSummary":
        return FunctionSummary(
            path=path,
            qualname=str(data["qualname"]),
            class_name=str(data["class_name"]),
            name=str(data["name"]),
            lineno=int(data["lineno"]),
            atoms=tuple(Atom.from_json(a) for a in data["atoms"]),
            calls=tuple(CallDesc.from_json(c) for c in data["calls"]),
            txn_line=int(data["txn_line"]),
            journal_seam=bool(data["journal_seam"]),
            handlers=tuple(Handler.from_json(h) for h in data["handlers"]),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the linker needs to know about one source file."""

    relpath: str
    sha256: str
    functions: Tuple[FunctionSummary, ...] = ()
    #: class name -> base-class names (resolved by name at link time).
    classes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    #: local alias -> dotted module name (``import x.y as z``).
    module_imports: Mapping[str, str] = field(default_factory=dict)
    #: local name -> ``dotted.module::symbol`` (``from m import f``).
    symbol_imports: Mapping[str, str] = field(default_factory=dict)
    #: lineno -> rule ids suppressed by ``# lint: ignore[...]``.
    pragmas: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "relpath": self.relpath,
            "sha256": self.sha256,
            "functions": [f.to_json() for f in self.functions],
            "classes": {c: list(b) for c, b in self.classes.items()},
            "module_imports": dict(self.module_imports),
            "symbol_imports": dict(self.symbol_imports),
            "pragmas": {str(k): list(v) for k, v in self.pragmas.items()},
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "ModuleSummary":
        relpath = str(data["relpath"])
        return ModuleSummary(
            relpath=relpath,
            sha256=str(data["sha256"]),
            functions=tuple(
                FunctionSummary.from_json(relpath, f) for f in data["functions"]
            ),
            classes={
                str(c): tuple(str(b) for b in bases)
                for c, bases in data["classes"].items()
            },
            module_imports={
                str(k): str(v) for k, v in data["module_imports"].items()
            },
            symbol_imports={
                str(k): str(v) for k, v in data["symbol_imports"].items()
            },
            pragmas={
                int(k): tuple(str(r) for r in v)
                for k, v in data["pragmas"].items()
            },
        )

    def suppressed(self, rule: str, line: int) -> bool:
        """Pragma check mirroring :meth:`ModuleInfo.suppressed` (same
        line or the line above), but answerable from the cache."""
        for ln in (line, line - 1):
            if rule in self.pragmas.get(ln, ()):
                return True
        return False

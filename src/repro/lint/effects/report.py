"""Driver + machine-readable report for the effects pass.

``run_effects(root, targets, config)`` is the whole pipeline: discover
files, extract (through the hash-keyed cache), link, propagate, check
R201-R204, and wrap the result in an :class:`EffectsReport` whose
``to_json`` emits the ``repro-effects/1`` document CI uploads as an
artifact.  The per-function section of the report is the analysis's
public byproduct: every function's local atoms, resolved out-edges and
seam flags, so a reviewer can answer "what can this batch entry
actually do?" without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..config import LintConfig
from ..engine import Finding, discover_files
from .cache import SummaryCache, cache_path
from .checks import EffectPolicy, run_checks
from .extract import ExtractionSpec, extract_module, file_sha256
from .graph import EffectGraph
from .model import ModuleSummary

__all__ = ["EFFECTS_SCHEMA", "EffectsReport", "run_effects"]

EFFECTS_SCHEMA = "repro-effects/1"


@dataclass
class EffectsReport:
    """Aggregated effects-run outcome (JSON-serialisable)."""

    root: str
    files: int
    findings: List[Finding] = field(default_factory=list)
    functions: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    entries: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": EFFECTS_SCHEMA,
            "root": self.root,
            "files": self.files,
            "entries": self.entries,
            "clean": self.clean,
            "counts": self.counts(),
            "findings": [f.to_json() for f in self.findings],
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "functions": self.functions,
        }


def _policy_from_config(config: LintConfig) -> EffectPolicy:
    return EffectPolicy(
        entries=[
            (e.path, e.class_name, e.method, e.rules)
            for e in config.effect_entries
        ],
        worker_roots=config.worker_kernel_roots,
        txn_guards=config.txn_guards,
        allowlist=config.effect_allowlist,
        columns=config.effect_columns,
        node_fields=config.effect_node_fields,
    )


def _function_record(
    graph: EffectGraph, fid: str
) -> Dict[str, Any]:
    fn = graph.functions[fid]
    return {
        "line": fn.lineno,
        "atoms": [a.to_json() for a in fn.atoms],
        "calls": sorted({callee for _ln, callee in graph.edges.get(fid, [])}),
        "opens_txn": fn.opens_txn,
        "journal_seam": fn.journal_seam,
    }


def run_effects(
    root: Path,
    targets: Sequence[str],
    config: LintConfig,
    *,
    use_cache: bool = True,
    cache_file: Optional[Path] = None,
) -> EffectsReport:
    """Run the full interprocedural pass over ``targets``."""
    spec = ExtractionSpec(
        columns=config.effect_columns,
        node_fields=config.effect_node_fields,
        seam_prefixes=config.effect_seam_paths,
    )
    files = discover_files(root, targets)
    cache: Optional[SummaryCache] = None
    if use_cache:
        cache = SummaryCache(
            cache_file if cache_file is not None else cache_path(root),
            spec.fingerprint(),
        )

    modules: Dict[str, ModuleSummary] = {}
    for path in files:
        relpath = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        summary: Optional[ModuleSummary] = None
        if cache is not None:
            summary = cache.lookup(relpath, file_sha256(source))
        if summary is None:
            summary = extract_module(relpath, source, spec)
            if cache is not None:
                cache.store(summary)
        modules[relpath] = summary
    if cache is not None:
        cache.flush(modules)

    graph = EffectGraph(modules.values())
    policy = _policy_from_config(config)
    findings = run_checks(graph, modules, policy)

    report = EffectsReport(
        root=str(root),
        files=len(files),
        findings=findings,
        entries=[
            f"{e.path}::{e.class_name + '.' if e.class_name else ''}"
            f"{e.method}"
            for e in config.effect_entries
        ],
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else len(files),
    )
    for fid in sorted(graph.functions):
        report.functions[fid] = _function_record(graph, fid)
    return report

"""Call-graph linking and fixpoint propagation over module summaries.

Resolution strategy (deliberately over-approximate — a missing edge
hides a bug, a spurious edge costs at worst an allowlist entry):

* ``self.m()`` resolves to **every** class in the receiver class's
  inheritance component that defines ``m``.  The component is the
  undirected closure of base-class links, so the reference→flat→
  parallel subclass shims dispatch through every override — a call in
  ``FlatRBSTS`` reaches the ``ParallelRBSTS`` override and vice versa.
* ``f()`` resolves through nested defs, module functions, from-imports
  and class constructors (``Class()`` → ``Class.__init__``).
* ``x.m()`` (duck) resolves to every analyzed class defining ``m`` —
  the ``tree: Any`` seams (transactions, resilience, snapshots) make
  this the only sound choice.
* a function reference passed **as an argument** attaches as an edge
  from the *resolved callee* (line 0 = "runs somewhere inside the
  callee"), falling back to the caller when the callee is unknown:
  ``execute_batch(tree, reqs, rej, self._batch_insert_core)`` runs the
  core under ``execute_batch``'s transaction, not the caller's.

Functions named ``__init__`` are *construction boundaries*: R202's
exposure cuts there, because construction precedes the first
transaction (the same reasoning rule R004's allowlists record).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from .model import (
    MUT_KINDS,
    Atom,
    CallDesc,
    FunctionSummary,
    ModuleSummary,
)

__all__ = ["EffectGraph", "SourcedAtom"]

#: An atom plus the function whose body performs it.
SourcedAtom = Tuple[str, Atom]  # (owner fid, atom)


class EffectGraph:
    """Linked call graph over every extracted module."""

    def __init__(self, modules: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {
            m.relpath: m for m in modules
        }
        self.functions: Dict[str, FunctionSummary] = {}
        #: dotted module -> relpath ("repro.transactions" -> "src/…").
        self._pkg_to_path: Dict[str, str] = {}
        #: (relpath, name) -> fid for module-level functions.
        self._module_funcs: Dict[Tuple[str, str], str] = {}
        #: (relpath, class, method) -> fid.
        self._methods: Dict[Tuple[str, str, str], str] = {}
        #: method name -> fids across all classes (duck resolution).
        self._methods_by_name: Dict[str, List[str]] = {}
        #: class name -> [(relpath, bases)].
        self._classes: Dict[str, List[Tuple[str, Tuple[str, ...]]]] = {}
        #: class name -> frozenset of class names (inheritance component).
        self._component: Dict[str, FrozenSet[str]] = {}
        #: fid -> [(call line, callee fid)]; line 0 = callback edge.
        self.edges: Dict[str, List[Tuple[int, str]]] = {}

        self._index()
        self._link()

    # -- indexing -------------------------------------------------------

    def _index(self) -> None:
        for mod in self.modules.values():
            self._pkg_to_path[_dotted_module(mod.relpath)] = mod.relpath
            for cls, bases in mod.classes.items():
                self._classes.setdefault(cls, []).append(
                    (mod.relpath, bases)
                )
            for fn in mod.functions:
                self.functions[fn.fid] = fn
                if "<locals>" in fn.qualname:
                    continue
                if fn.class_name:
                    self._methods[
                        (mod.relpath, fn.class_name, fn.name)
                    ] = fn.fid
                    self._methods_by_name.setdefault(fn.name, []).append(
                        fn.fid
                    )
                else:
                    self._module_funcs[(mod.relpath, fn.name)] = fn.fid
        self._build_components()

    def _build_components(self) -> None:
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            root = x
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for cls, defs in self._classes.items():
            for _path, bases in defs:
                for base in bases:
                    if base in self._classes:
                        union(cls, base)
        groups: Dict[str, Set[str]] = {}
        for cls in self._classes:
            groups.setdefault(find(cls), set()).add(cls)
        for members in groups.values():
            frozen = frozenset(members)
            for cls in members:
                self._component[cls] = frozen

    # -- resolution -----------------------------------------------------

    def _resolve_method_in(self, cls: str, method: str) -> List[str]:
        """``cls.method`` with base-class fallback inside the component."""
        for path, _bases in self._classes.get(cls, []):
            fid = self._methods.get((path, cls, method))
            if fid is not None:
                return [fid]
        out: List[str] = []
        for other in sorted(self._component.get(cls, frozenset())):
            for path, _bases in self._classes.get(other, []):
                fid = self._methods.get((path, other, method))
                if fid is not None:
                    out.append(fid)
        return out

    def _resolve_self(self, caller: FunctionSummary, method: str) -> List[str]:
        if not caller.class_name:
            return []
        comp = self._component.get(
            caller.class_name, frozenset({caller.class_name})
        )
        out: List[str] = []
        for cls in sorted(comp):
            for path, _bases in self._classes.get(cls, []):
                fid = self._methods.get((path, cls, method))
                if fid is not None:
                    out.append(fid)
        return out

    def _resolve_name(
        self, caller: FunctionSummary, name: str
    ) -> List[str]:
        mod = self.modules.get(caller.path)
        nested = f"{caller.path}::{caller.qualname}.<locals>.{name}"
        if nested in self.functions:
            return [nested]
        fid = self._module_funcs.get((caller.path, name))
        if fid is not None:
            return [fid]
        if mod is not None:
            target = mod.symbol_imports.get(name)
            if target is not None:
                dotted, _, sym = target.partition("::")
                path = self._pkg_to_path.get(dotted)
                if path is not None:
                    fid = self._module_funcs.get((path, sym))
                    if fid is not None:
                        return [fid]
                    init = self._methods.get((path, sym, "__init__"))
                    if init is not None:
                        return [init]
            if name in mod.classes:
                init = self._methods.get((caller.path, name, "__init__"))
                if init is not None:
                    return [init]
        return []

    def resolve(
        self, caller: FunctionSummary, call: CallDesc
    ) -> List[str]:
        if call.kind == "self":
            return self._resolve_self(caller, call.name)
        if call.kind == "name":
            return self._resolve_name(caller, call.name)
        if call.kind == "class":
            return self._resolve_method_in(call.owner, call.name)
        if call.kind == "duck":
            return list(self._methods_by_name.get(call.name, []))
        return []

    def _resolve_hint(
        self, caller: FunctionSummary, hint: Tuple[str, str]
    ) -> List[str]:
        kind, name = hint
        if kind == "self":
            return self._resolve_self(caller, name)
        return self._resolve_name(caller, name)

    # -- linking --------------------------------------------------------

    def _link(self) -> None:
        for fn in self.functions.values():
            self.edges.setdefault(fn.fid, [])
        for fn in self.functions.values():
            out = self.edges[fn.fid]
            for call in fn.calls:
                targets = self.resolve(fn, call)
                for t in targets:
                    out.append((call.line, t))
                cb_targets: List[str] = []
                for hint in call.callbacks:
                    cb_targets.extend(self._resolve_hint(fn, hint))
                if not cb_targets:
                    continue
                if targets:
                    for t in targets:
                        for cb in cb_targets:
                            self.edges[t].append((0, cb))
                else:
                    for cb in cb_targets:
                        out.append((call.line, cb))
        for fid, out in self.edges.items():
            seen: Set[Tuple[int, str]] = set()
            unique: List[Tuple[int, str]] = []
            for edge in out:
                if edge not in seen:
                    seen.add(edge)
                    unique.append(edge)
            self.edges[fid] = unique

    # -- entry lookup ---------------------------------------------------

    def find_entry(
        self, path: str, class_name: str, method: str
    ) -> Optional[str]:
        """Entry-point fid, following inheritance for methods a subclass
        backend (e.g. ``ParallelRBSTS``) inherits rather than defines."""
        if not class_name:
            fid = self._module_funcs.get((path, method))
            return fid
        fid = self._methods.get((path, class_name, method))
        if fid is not None:
            return fid
        resolved = self._resolve_method_in(class_name, method)
        return resolved[0] if resolved else None

    # -- closures -------------------------------------------------------

    def reachable(self, roots: Iterable[str]) -> Dict[str, Optional[str]]:
        """BFS over all edges; returns ``fid -> predecessor`` (roots map
        to None), which doubles as the reachable set and a path oracle."""
        pred: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for r in roots:
            if r in self.functions and r not in pred:
                pred[r] = None
                queue.append(r)
        while queue:
            cur = queue.pop(0)
            for _line, nxt in self.edges.get(cur, []):
                if nxt not in pred:
                    pred[nxt] = cur
                    queue.append(nxt)
        return pred

    def path_to(
        self, pred: Mapping[str, Optional[str]], fid: str, limit: int = 7
    ) -> List[str]:
        chain: List[str] = []
        cur: Optional[str] = fid
        while cur is not None and len(chain) < limit:
            chain.append(self.functions[cur].qualname)
            cur = pred.get(cur)
        chain.reverse()
        return chain

    def atoms_in(
        self, reach: Iterable[str], kinds: FrozenSet[str]
    ) -> List[SourcedAtom]:
        out: List[SourcedAtom] = []
        for fid in reach:
            fn = self.functions.get(fid)
            if fn is None:
                continue
            for atom in fn.atoms:
                if atom.kind in kinds:
                    out.append((fid, atom))
        return out

    # -- R202 exposure fixpoint -----------------------------------------

    def exposed_mutations(
        self, extra_guards: FrozenSet[str]
    ) -> Dict[str, FrozenSet[SourcedAtom]]:
        """``exposed(f)``: mutation atoms reachable from ``f`` along some
        call path containing **no** transaction guard.

        Guards are functions that open a transaction themselves plus the
        registered ``TXN_GUARDS``; their exposure is empty by definition
        (everything below them runs inside the bracket).  A function's
        *own* mutations are covered when it references the journal seam
        (rule R004's convention) or is a construction boundary
        (``__init__``)."""
        guards: Set[str] = set(extra_guards)
        for fid, fn in self.functions.items():
            if fn.opens_txn or fn.name == "__init__":
                guards.add(fid)

        own: Dict[str, FrozenSet[SourcedAtom]] = {}
        for fid, fn in self.functions.items():
            if fn.journal_seam:
                own[fid] = frozenset()
            else:
                own[fid] = frozenset(
                    (fid, a) for a in fn.atoms if a.kind in MUT_KINDS
                )

        exposed: Dict[str, FrozenSet[SourcedAtom]] = {
            fid: (frozenset() if fid in guards else own[fid])
            for fid in self.functions
        }
        changed = True
        while changed:
            changed = False
            for fid in self.functions:
                if fid in guards:
                    continue
                acc: Set[SourcedAtom] = set(own[fid])
                for _line, callee in self.edges.get(fid, []):
                    if callee in guards:
                        continue
                    acc.update(exposed[callee])
                frozen = frozenset(acc)
                if frozen != exposed[fid]:
                    exposed[fid] = frozen
                    changed = True
        return exposed

    def unguarded_path(
        self, entry: str, target: str, extra_guards: FrozenSet[str]
    ) -> List[str]:
        """A concrete guard-free call chain entry → target, for finding
        messages (falls back to the entry alone when target == entry)."""
        guards: Set[str] = set(extra_guards)
        for fid, fn in self.functions.items():
            if fn.opens_txn or fn.name == "__init__":
                guards.add(fid)
        pred: Dict[str, Optional[str]] = {entry: None}
        queue = [entry]
        while queue:
            cur = queue.pop(0)
            if cur == target:
                return self.path_to(pred, cur)
            for _line, nxt in self.edges.get(cur, []):
                if nxt in guards or nxt in pred:
                    continue
                pred[nxt] = cur
                queue.append(nxt)
        return [self.functions[entry].qualname]

    # -- R204 transaction regions ---------------------------------------

    def txn_region_atoms(self, fid: str) -> List[SourcedAtom]:
        """Mutation atoms inside ``fid``'s transaction bracket: its own
        stores after the ``txn_begin`` call, plus the full mutation
        closure of callees invoked after it (callback edges always
        count — they run somewhere inside the callee).  The closure cuts
        at nested transaction openers: their own bracket owns their
        coverage."""
        fn = self.functions[fid]
        if not fn.opens_txn:
            return []
        out: List[SourcedAtom] = [
            (fid, a)
            for a in fn.atoms
            if a.kind in MUT_KINDS and a.line > fn.txn_line
        ]
        roots: List[str] = [
            callee
            for line, callee in self.edges.get(fid, [])
            if (line == 0 or line > fn.txn_line) and callee != fid
        ]
        seen: Set[str] = {fid}
        queue = list(roots)
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            sub = self.functions.get(cur)
            if sub is None:
                continue
            if sub.opens_txn or sub.name == "__init__":
                continue
            for atom in sub.atoms:
                if atom.kind in MUT_KINDS:
                    out.append((cur, atom))
            for _line, nxt in self.edges.get(cur, []):
                if nxt not in seen:
                    queue.append(nxt)
        return out


def _dotted_module(relpath: str) -> str:
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    last = parts[-1]
    if last == "__init__.py":
        parts = parts[:-1]
    elif last.endswith(".py"):
        parts[-1] = last[:-3]
    return ".".join(parts)

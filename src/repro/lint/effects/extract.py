"""Per-file effect extraction: source text -> :class:`ModuleSummary`.

One ordered pass per function body.  Ordering matters because the
scanner tracks three *local alias* families the repo's hot loops lean
on heavily:

* **rng aliases** — ``master = self._rng``, ``rnd = self._rng.random``,
  ``coins = [random.Random(master.getrandbits(64)).random for _ in r]``:
  calls through any of these are sanctioned ``rng`` draws, not
  module-level randomness;
* **set aliases** — ``site_set = set(sites)``: a later
  ``for s in site_set`` is a ``set-iter`` atom even though the loop
  header itself mentions no ``set()`` call;
* **column aliases** — ``parent, left, right = self._parent,
  self._left, self._right``: a later ``parent[v] = u`` is a
  ``mut-col:_parent`` store even though no attribute appears at the
  store site.

Nested ``def``s become their own :class:`FunctionSummary` under a
``<locals>`` qualname (callers reach them through resolved ``name``
calls or callback hints); ``lambda`` bodies are folded into the
enclosing function — the repo's lambdas are one-expression shims whose
effects belong to the function that wrote them.
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .model import (
    KIND_GLOBAL_RNG,
    KIND_IO,
    KIND_MUT_COL,
    KIND_MUT_NODE,
    KIND_MUT_OTHER,
    KIND_RAISE,
    KIND_RNG,
    KIND_SET_ITER,
    KIND_SPAWN,
    KIND_TIME,
    Atom,
    CallDesc,
    FunctionSummary,
    Handler,
    ModuleSummary,
)

__all__ = ["ExtractionSpec", "extract_module", "file_sha256"]

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")

#: Module-level ``random`` functions (mirrors rule R002's table).
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "seed",
        "betavariate",
        "expovariate",
        "gauss",
        "normalvariate",
        "triangular",
        "vonmisesvariate",
    }
)

_TIME_FNS = frozenset(
    {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns"}
)

_RNG_DRAW_METHODS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "seed",
        "getstate",
        "setstate",
    }
)

_LIST_MUTATORS = frozenset(
    {"append", "extend", "insert", "pop", "clear", "remove"}
)

_IO_OS_FNS = frozenset(
    {"replace", "rename", "fsync", "remove", "unlink", "makedirs", "rmdir"}
)

_IO_ATTR_METHODS = frozenset(
    {"write_text", "write_bytes", "read_text", "read_bytes"}
)

#: Method names never duck-resolved to analyzed classes: they collide
#: with builtin container/IPC vocabulary far more often than they name a
#: library method, and a wrong duck edge is worse than a missing one.
_DUCK_DENYLIST = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "clear",
        "remove",
        "add",
        "discard",
        "update",
        "get",
        "setdefault",
        "popitem",
        "keys",
        "values",
        "items",
        "sort",
        "reverse",
        "copy",
        "count",
        "index",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "encode",
        "decode",
        "send",
        "recv",
        "poll",
        "start",
        "put",
        "read",
        "write",
        "flush",
        "close",
        "__init__",
    }
)

_BROAD_CATCHES = frozenset({"BaseException", "Exception", "ReproError"})


class ExtractionSpec:
    """What the extractor must know about the repo being scanned.

    ``columns``/``node_fields`` define the snapshot-covered mutation
    universe (defaults come from :mod:`repro.snapshots.core` via
    :class:`repro.lint.config.LintConfig`); ``seam_prefixes`` name the
    path prefixes of the snapshot/journal machinery itself, whose
    bookkeeping writes *are* the rollback seam and must not be
    atomized as mutations.
    """

    def __init__(
        self,
        columns: Iterable[str],
        node_fields: Iterable[str],
        seam_prefixes: Sequence[str] = (),
    ) -> None:
        self.columns = frozenset(columns)
        self.node_fields = frozenset(node_fields)
        self.seam_prefixes = tuple(seam_prefixes)

    def is_seam_path(self, relpath: str) -> bool:
        return any(relpath.startswith(p) for p in self.seam_prefixes)

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        for part in (
            sorted(self.columns),
            sorted(self.node_fields),
            list(self.seam_prefixes),
        ):
            h.update("\x1f".join(part).encode())
            h.update(b"\x1e")
        return h.hexdigest()[:16]


def file_sha256(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def extract_module(
    relpath: str, source: str, spec: ExtractionSpec
) -> ModuleSummary:
    """Parse ``source`` and summarise every function it defines."""
    tree = ast.parse(source, filename=relpath)
    module_imports: Dict[str, str] = {}
    symbol_imports: Dict[str, str] = {}
    classes: Dict[str, Tuple[str, ...]] = {}
    functions: List[FunctionSummary] = []
    module_pkg = _package_of(relpath)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            mod = _resolve_from_import(module_pkg, node)
            if mod is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                symbol_imports[alias.asname or alias.name] = (
                    f"{mod}::{alias.name}"
                )

    skip_mut = spec.is_seam_path(relpath)

    def walk_body(
        body: Sequence[ast.stmt], prefix: str, class_name: str
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _extract_function(
                    functions,
                    relpath,
                    stmt,
                    prefix,
                    class_name,
                    spec,
                    skip_mut,
                )
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}{stmt.name}"
                if not prefix:  # only top-level classes join the registry
                    classes[stmt.name] = tuple(
                        b.id for b in stmt.bases if isinstance(b, ast.Name)
                    ) + tuple(
                        b.attr
                        for b in stmt.bases
                        if isinstance(b, ast.Attribute)
                    )
                walk_body(stmt.body, f"{qual}.", stmt.name)

    walk_body(tree.body, "", "")

    pragmas: Dict[int, Tuple[str, ...]] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(text)
        if m:
            pragmas[i] = tuple(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )

    return ModuleSummary(
        relpath=relpath,
        sha256=file_sha256(source),
        functions=tuple(functions),
        classes=classes,
        module_imports=module_imports,
        symbol_imports=symbol_imports,
        pragmas=pragmas,
    )


def _package_of(relpath: str) -> str:
    """Dotted package of ``src/repro/perf/x.py`` -> ``repro.perf``."""
    parts = relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts = parts[:-1] if parts[-1] == "__init__.py" else parts[:-1]
    return ".".join(parts)


def _resolve_from_import(
    module_pkg: str, node: ast.ImportFrom
) -> Optional[str]:
    if node.level == 0:
        return node.module
    base = module_pkg.split(".")
    # level=1 means "this package"; each extra level pops one component.
    drop = node.level - 1
    if drop > len(base):
        return None
    kept = base[: len(base) - drop] if drop else base
    if node.module:
        kept = kept + node.module.split(".")
    return ".".join(kept) if kept else None


# ---------------------------------------------------------------------------
# per-function scan
# ---------------------------------------------------------------------------


def _extract_function(
    out: List[FunctionSummary],
    relpath: str,
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    prefix: str,
    class_name: str,
    spec: ExtractionSpec,
    skip_mut: bool,
) -> None:
    qualname = f"{prefix}{fn.name}"
    scanner = _FunctionScanner(spec, skip_mut)
    scanner.scan_body(fn.body)
    out.append(
        FunctionSummary(
            path=relpath,
            qualname=qualname,
            class_name=class_name,
            name=fn.name,
            lineno=fn.lineno,
            atoms=tuple(scanner.atoms),
            calls=tuple(scanner.calls),
            txn_line=scanner.txn_line,
            journal_seam=scanner.journal_seam,
            handlers=tuple(scanner.handlers),
        )
    )
    for nested in scanner.nested:
        _extract_function(
            out,
            relpath,
            nested,
            f"{qualname}.<locals>.",
            class_name,
            spec,
            skip_mut,
        )


def _attr_chain(node: ast.expr) -> Optional[List[str]]:
    """``self._rng.random`` -> ``["self", "_rng", "random"]`` (None when
    the chain bottoms out in anything but a Name)."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        parts.reverse()
        return parts
    return None


class _FunctionScanner:
    """Ordered walk of one function body (lambdas folded in, nested
    defs deferred to their own summaries)."""

    def __init__(self, spec: ExtractionSpec, skip_mut: bool) -> None:
        self.spec = spec
        self.skip_mut = skip_mut
        self.atoms: List[Atom] = []
        self.calls: List[CallDesc] = []
        self.handlers: List[Handler] = []
        self.nested: List["ast.FunctionDef | ast.AsyncFunctionDef"] = []
        self.txn_line = 0
        self.journal_seam = False
        self.rng_aliases: Set[str] = set()
        self.set_aliases: Set[str] = set()
        self.col_aliases: Dict[str, str] = {}
        self._local_defs: Set[str] = set()

    # -- statements ----------------------------------------------------

    def scan_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(stmt)
            self._local_defs.add(stmt.name)
            return
        if isinstance(stmt, ast.ClassDef):
            # Function-local classes: scan method bodies inline (their
            # effects belong to whoever instantiates them here).
            for sub in stmt.body:
                self._scan_stmt(sub)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            for target in stmt.targets:
                self._scan_store(target, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
                self._scan_store(stmt.target, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value)
            self._scan_store(stmt.target, None)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._record_container_mut(target.value, target.lineno)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter)
            self._check_set_iteration(stmt.iter)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
            self.scan_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.scan_body(stmt.body)
            for handler in stmt.handlers:
                self._record_handler(handler)
                self.scan_body(handler.body)
            self.scan_body(stmt.orelse)
            self.scan_body(stmt.finalbody)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._scan_expr(stmt.exc)
            name = _raise_type_name(stmt)
            self.atoms.append(Atom(KIND_RAISE, name, stmt.lineno))
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Assert):
            self._scan_expr(stmt.test)
            return
        # Imports inside functions, pass, break, continue, global, …
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child)
            elif isinstance(child, ast.stmt):
                self._scan_stmt(child)

    # -- stores / aliases ----------------------------------------------

    def _scan_store(
        self, target: ast.expr, value: Optional[ast.expr]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            values: Sequence[Optional[ast.expr]]
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                values = value.elts
            else:
                values = [None] * len(target.elts)
            for sub, subval in zip(target.elts, values):
                self._scan_store(sub, subval)
            return
        if isinstance(target, ast.Name):
            self._update_aliases(target.id, value)
            return
        if isinstance(target, ast.Subscript):
            self._record_container_mut(target.value, target.lineno)
            return
        if isinstance(target, ast.Attribute):
            if self.skip_mut:
                return
            if target.attr in self.spec.node_fields:
                self.atoms.append(
                    Atom(KIND_MUT_NODE, target.attr, target.lineno)
                )
            return

    def _update_aliases(
        self, name: str, value: Optional[ast.expr]
    ) -> None:
        self.rng_aliases.discard(name)
        self.set_aliases.discard(name)
        self.col_aliases.pop(name, None)
        if value is None:
            return
        if self._is_rngish(value):
            self.rng_aliases.add(name)
        elif self._is_setish(value):
            self.set_aliases.add(name)
        else:
            col = self._column_of_expr(value)
            if col is not None:
                self.col_aliases[name] = col

    def _column_of_expr(self, expr: ast.expr) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr in self.spec.columns
        ):
            return expr.attr
        if isinstance(expr, ast.Name) and expr.id in self.col_aliases:
            return self.col_aliases[expr.id]
        return None

    def _record_container_mut(
        self, container: ast.expr, line: int
    ) -> None:
        """``container[...] = v`` / ``del container[...]`` /
        ``container.<mutator>(...)`` — classify the container."""
        if self.skip_mut:
            return
        if isinstance(container, ast.Attribute):
            attr = container.attr
            if attr in self.spec.columns:
                self.atoms.append(Atom(KIND_MUT_COL, attr, line))
            elif attr.startswith("_") and attr != "_journal":
                self.atoms.append(Atom(KIND_MUT_OTHER, attr, line))
            return
        if isinstance(container, ast.Name):
            col = self.col_aliases.get(container.id)
            if col is not None:
                self.atoms.append(Atom(KIND_MUT_COL, col, line))

    # -- expressions ----------------------------------------------------

    def _scan_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._handle_call(node)
            elif isinstance(
                node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
            ):
                for comp in node.generators:
                    self._check_set_iteration(comp.iter)
            elif isinstance(node, ast.Attribute):
                if node.attr == "_journal":
                    self.journal_seam = True
            elif isinstance(node, ast.Name):
                if node.id == "journal":
                    self.journal_seam = True

    def _check_set_iteration(self, iter_expr: ast.expr) -> None:
        if self._is_setish(iter_expr):
            detail = (
                iter_expr.id
                if isinstance(iter_expr, ast.Name)
                else "set-expression"
            )
            self.atoms.append(
                Atom(KIND_SET_ITER, detail, iter_expr.lineno)
            )

    # -- call classification --------------------------------------------

    def _handle_call(self, call: ast.Call) -> None:
        func = call.func
        line = call.lineno
        callbacks = self._callback_hints(call)

        if isinstance(func, ast.Subscript):
            base = func.value
            if isinstance(base, ast.Name) and base.id in self.rng_aliases:
                self.atoms.append(Atom(KIND_RNG, f"{base.id}[...]", line))
            return

        if isinstance(func, ast.Name):
            name = func.id
            if name == "open":
                self.atoms.append(Atom(KIND_IO, "open", line))
                return
            if name in ("list", "tuple") and len(call.args) == 1:
                if self._is_setish(call.args[0]):
                    arg = call.args[0]
                    detail = (
                        arg.id if isinstance(arg, ast.Name) else "set-expression"
                    )
                    self.atoms.append(Atom(KIND_SET_ITER, detail, line))
                return
            if name in self.rng_aliases:
                self.atoms.append(Atom(KIND_RNG, name, line))
                return
            if name == "txn_begin" and not self.txn_line:
                self.txn_line = line
            self.calls.append(CallDesc("name", "", name, line, callbacks))
            return

        if not isinstance(func, ast.Attribute):
            return

        method = func.attr
        chain = _attr_chain(func)

        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            self.calls.append(CallDesc("self", "", method, line, callbacks))
            return

        if self._is_rngish(func.value) or (
            chain is not None and "_rng" in chain[:-1]
        ):
            if method in _RNG_DRAW_METHODS:
                self.atoms.append(Atom(KIND_RNG, method, line))
            return

        if chain is not None and len(chain) == 2:
            root, _ = chain[0], chain[1]
            mod_atom = self._module_call_atom(root, method, call, line)
            if mod_atom is not None:
                if mod_atom.kind != "":
                    self.atoms.append(mod_atom)
                return

        if method == "_txn_begin":
            if not self.txn_line:
                self.txn_line = line
            self.calls.append(
                CallDesc("duck", "", method, line, callbacks)
            )
            return

        if method in _LIST_MUTATORS:
            self._record_container_mut(func.value, line)
            return

        if method in _IO_ATTR_METHODS:
            self.atoms.append(Atom(KIND_IO, method, line))
            return

        if method in ("Process", "Pipe"):
            self.atoms.append(Atom(KIND_SPAWN, method, line))
            return

        if isinstance(func.value, ast.Name):
            root_name = func.value.id
            if root_name == "self":
                self.calls.append(
                    CallDesc("self", "", method, line, callbacks)
                )
                return
            if root_name[:1].isupper():
                self.calls.append(
                    CallDesc("class", root_name, method, line, callbacks)
                )
                return

        if method not in _DUCK_DENYLIST:
            self.calls.append(CallDesc("duck", "", method, line, callbacks))

    def _module_call_atom(
        self, root: str, fn: str, call: ast.Call, line: int
    ) -> Optional[Atom]:
        """Atom for ``root.fn(...)`` when ``root`` names a library
        module we classify.  ``Atom(kind="")`` means "recognised,
        effect-free"; ``None`` means "not a module call"."""
        if root == "random":
            if fn in _GLOBAL_RANDOM_FNS:
                return Atom(KIND_GLOBAL_RNG, f"random.{fn}", line)
            if fn == "Random":
                if call.args or call.keywords:
                    return Atom(KIND_RNG, "Random(seed)", line)
                return Atom(KIND_GLOBAL_RNG, "random.Random()", line)
            return Atom("", "", line)
        if root == "time" and fn in _TIME_FNS:
            return Atom(KIND_TIME, f"time.{fn}", line)
        if root == "datetime" and fn in ("now", "utcnow", "today"):
            return Atom(KIND_TIME, f"datetime.{fn}", line)
        if root == "os":
            if fn == "urandom":
                return Atom(KIND_GLOBAL_RNG, "os.urandom", line)
            if fn in _IO_OS_FNS:
                return Atom(KIND_IO, f"os.{fn}", line)
            return Atom("", "", line)
        if root == "secrets":
            return Atom(KIND_GLOBAL_RNG, f"secrets.{fn}", line)
        if root == "uuid" and fn in ("uuid1", "uuid4"):
            return Atom(KIND_GLOBAL_RNG, f"uuid.{fn}", line)
        if root == "shutil":
            return Atom(KIND_IO, f"shutil.{fn}", line)
        if root == "multiprocessing" and fn == "get_context":
            return Atom(KIND_SPAWN, "get_context", line)
        if root == "math":
            return Atom("", "", line)
        return None

    def _callback_hints(
        self, call: ast.Call
    ) -> Tuple[Tuple[str, str], ...]:
        hints: List[Tuple[str, str]] = []
        args: List[ast.expr] = list(call.args)
        args.extend(kw.value for kw in call.keywords)
        for arg in args:
            if (
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"
            ):
                hints.append(("self", arg.attr))
            elif isinstance(arg, ast.Name) and (
                arg.id in self._local_defs or not arg.id[:1].isupper()
            ):
                hints.append(("name", arg.id))
        return tuple(hints)

    # -- type-ish predicates --------------------------------------------

    def _is_rngish(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.rng_aliases
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain is not None and "_rng" in chain:
                return True
            return self._is_rngish(expr.value)
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "Random"
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and (expr.args or expr.keywords)
            ):
                return True
            if isinstance(func, ast.Name) and func.id == "Random" and (
                expr.args or expr.keywords
            ):
                return True
            return False
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            return self._is_rngish(expr.elt)
        if isinstance(expr, ast.List):
            return any(self._is_rngish(e) for e in expr.elts)
        return False

    def _is_setish(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.set_aliases
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in (
                "set",
                "frozenset",
            ):
                return True
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitAnd, ast.BitOr, ast.Sub)
        ):
            return self._is_setish(expr.left) or self._is_setish(expr.right)
        return False

    def _record_handler(self, handler: ast.ExceptHandler) -> None:
        types: Tuple[str, ...]
        if handler.type is None:
            types = ()
            broad = True
        else:
            names: List[str] = []
            exprs = (
                list(handler.type.elts)
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            for e in exprs:
                if isinstance(e, ast.Name):
                    names.append(e.id)
                elif isinstance(e, ast.Attribute):
                    names.append(e.attr)
            types = tuple(names)
            broad = any(n in _BROAD_CATCHES for n in names)
        reraises = _body_reraises(handler.body)
        self.handlers.append(
            Handler(handler.lineno, types, broad, reraises)
        )


def _body_reraises(body: Sequence[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Raise):
                return True
    return False


def _raise_type_name(stmt: ast.Raise) -> str:
    exc = stmt.exc
    if exc is None:
        return "<re-raise>"
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return "<dynamic>"

"""Rule registry: every static invariant the repo enforces.

``default_rules`` is the canonical ordering used by the CLI, the CI
gate and the repo-clean self-check; tests build narrower rule sets
against fixture configs.
"""

from __future__ import annotations

from typing import List

from ..config import LintConfig
from ..engine import Rule
from ..races import CommonDisagreementRule, PokeInStepRule, StaleReadRule
from .exports import ExportHygieneRule
from .journal import JournalCoverageRule
from .parity import BackendParityRule
from .raises import BareRaiseRule
from .randomness import RandomnessRule

__all__ = [
    "BareRaiseRule",
    "RandomnessRule",
    "BackendParityRule",
    "JournalCoverageRule",
    "ExportHygieneRule",
    "StaleReadRule",
    "PokeInStepRule",
    "CommonDisagreementRule",
    "default_rules",
]


def default_rules(config: LintConfig) -> List[Rule]:
    return [
        BareRaiseRule(config),
        RandomnessRule(config),
        BackendParityRule(config),
        JournalCoverageRule(config),
        ExportHygieneRule(config),
        StaleReadRule(config),
        PokeInStepRule(config),
        CommonDisagreementRule(config),
    ]

"""R001 — bare builtin raise.

Every error the library raises must come from the :mod:`repro.errors`
taxonomy so that ``except ReproError`` is a complete catch contract
(tests/test_errors_taxonomy.py enforces the runtime side; this rule
stops regressions before the fuzzer runs).  ``TypeError`` /
``AssertionError`` / ``NotImplementedError`` stay allowed: they signal
programming errors that the taxonomy deliberately never wraps.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..config import LintConfig
from ..engine import Finding, ModuleInfo, RepoContext, Rule

__all__ = ["BareRaiseRule"]


class BareRaiseRule(Rule):
    id = "R001"
    title = "bare builtin raise (use the repro.errors taxonomy)"
    level = "error"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, ctx: RepoContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        forbidden = self.config.forbidden_builtins
        for module in ctx:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                name = _raised_name(node.exc)
                if name in forbidden:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"raises builtin {name}; use a ReproError "
                            "subclass from repro.errors (dual-inheritance "
                            "classes keep the legacy builtin catchable)",
                        )
                    )
        return findings


def _raised_name(exc: ast.expr) -> str:
    """The exception name at a raise site: ``raise X(...)`` or
    ``raise X`` for a plain name ``X`` (attribute raises like
    ``errors.Foo`` and re-raised variables are out of scope)."""
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return ""

"""R003 — backend API parity.

The flat struct-of-arrays backend must stay a drop-in twin of the
reference implementation: same public surface, same parameter names.
The differential fuzzer replays one op stream against both backends in
lockstep, so a method that exists on one side only (or renames a
keyword) silently narrows fuzz coverage rather than failing loudly.
This rule diffs the registered surface pairs straight from the ASTs on
every lint run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import LintConfig, ParityPair
from ..engine import Finding, ModuleInfo, RepoContext, Rule

__all__ = ["BackendParityRule"]


@dataclass(frozen=True)
class _Member:
    name: str
    kind: str  # "method" | "property" | "attribute"
    params: Tuple[str, ...]
    node: ast.AST


class BackendParityRule(Rule):
    id = "R003"
    title = "backend API parity (reference vs flat surface)"
    level = "error"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, ctx: RepoContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for pair in self.config.parity_pairs:
            findings.extend(self._check_pair(ctx, pair))
        return findings

    # -- one pair ---------------------------------------------------------
    def _check_pair(
        self, ctx: RepoContext, pair: ParityPair
    ) -> Iterable[Finding]:
        ref_mod = ctx.module(pair.ref_path)
        flat_mod = ctx.module(pair.flat_path)
        if ref_mod is None or flat_mod is None:
            # Pair members outside the scanned target set: nothing to do
            # (the repo-clean self-check always scans all of src/repro).
            return
        ref = _find_symbol(ref_mod, pair.ref_symbol)
        flat = _find_symbol(flat_mod, pair.flat_symbol)
        for mod, path, sym, node in (
            (ref_mod, pair.ref_path, pair.ref_symbol, ref),
            (flat_mod, pair.flat_path, pair.flat_symbol, flat),
        ):
            if node is None:
                yield self.finding(
                    mod,
                    mod.tree,
                    f"parity pair {pair.name!r}: symbol {sym!r} not found "
                    f"in {path}",
                )
        if ref is None or flat is None:
            return
        if pair.kind == "function":
            yield from self._compare_functions(
                pair, ref_mod, flat_mod, ref, flat
            )
            return
        base_members: Optional[Dict[str, _Member]] = None
        if pair.flat_base is not None:
            base_path, base_name = pair.flat_base
            base_mod = ctx.module(base_path)
            base = (
                _find_symbol(base_mod, base_name)
                if base_mod is not None
                else None
            )
            if not isinstance(base, ast.ClassDef):
                yield self.finding(
                    flat_mod,
                    flat,
                    f"parity pair {pair.name!r}: flat_base class "
                    f"{base_name!r} not found in {base_path}",
                )
                return
            base_members = _public_members(base)
        yield from self._compare_classes(
            pair, ref_mod, flat_mod, ref, flat, base_members
        )

    def _compare_functions(
        self,
        pair: ParityPair,
        ref_mod: ModuleInfo,
        flat_mod: ModuleInfo,
        ref: ast.AST,
        flat: ast.AST,
    ) -> Iterable[Finding]:
        assert isinstance(ref, (ast.FunctionDef, ast.AsyncFunctionDef))
        assert isinstance(flat, (ast.FunctionDef, ast.AsyncFunctionDef))
        ref_params = _params(ref, drop_self=False)
        flat_params = _params(flat, drop_self=False)
        mapped = tuple(pair.param_renames.get(p, p) for p in ref_params)
        if mapped != flat_params:
            yield self.finding(
                flat_mod,
                flat,
                f"parity pair {pair.name!r}: parameter drift — "
                f"{pair.ref_symbol}{tuple(ref_params)} vs "
                f"{pair.flat_symbol}{tuple(flat_params)}",
            )

    def _compare_classes(
        self,
        pair: ParityPair,
        ref_mod: ModuleInfo,
        flat_mod: ModuleInfo,
        ref: ast.AST,
        flat: ast.AST,
        base_members: Optional[Dict[str, _Member]] = None,
    ) -> Iterable[Finding]:
        assert isinstance(ref, ast.ClassDef)
        assert isinstance(flat, ast.ClassDef)
        ref_members = _public_members(ref)
        # Inherited surface first, own overrides on top — the flat side
        # is compared by what callers can actually reach.
        flat_members = dict(base_members or {})
        flat_members.update(_public_members(flat))

        for name, member in sorted(ref_members.items()):
            if name in pair.allow_extra_ref:
                continue
            twin = flat_members.get(name)
            if twin is None:
                yield self.finding(
                    flat_mod,
                    flat,
                    f"parity pair {pair.name!r}: {pair.flat_symbol} lacks "
                    f"public member {name!r} present on {pair.ref_symbol} "
                    "(add it, or register the gap in "
                    "repro.lint.config.PARITY_PAIRS)",
                )
                continue
            if twin.kind != member.kind:
                yield self.finding(
                    flat_mod,
                    twin.node,
                    f"parity pair {pair.name!r}: member {name!r} is a "
                    f"{member.kind} on {pair.ref_symbol} but a {twin.kind} "
                    f"on {pair.flat_symbol}",
                )
                continue
            mapped = tuple(
                pair.param_renames.get(p, p) for p in member.params
            )
            if member.kind == "method" and mapped != twin.params:
                yield self.finding(
                    flat_mod,
                    twin.node,
                    f"parity pair {pair.name!r}: parameter drift on "
                    f"{name!r} — {tuple(member.params)} vs "
                    f"{tuple(twin.params)}",
                )
        for name, twin in sorted(flat_members.items()):
            if name in ref_members or name in pair.allow_extra_flat:
                continue
            yield self.finding(
                flat_mod,
                twin.node,
                f"parity pair {pair.name!r}: {pair.flat_symbol} grew "
                f"public member {name!r} with no {pair.ref_symbol} "
                "counterpart (mirror it, or register it in "
                "repro.lint.config.PARITY_PAIRS with a justification)",
            )


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _find_symbol(module: ModuleInfo, name: str) -> Optional[ast.AST]:
    for node in module.tree.body:
        if (
            isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return node
    return None


def _params(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, *, drop_self: bool
) -> Tuple[str, ...]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if drop_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    if args.vararg is not None:
        names.append("*" + args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append("**" + args.kwarg.arg)
    return tuple(names)


def _public_members(cls: ast.ClassDef) -> Dict[str, _Member]:
    """Public methods/properties plus annotated class-level attributes
    (dataclass fields)."""
    members: Dict[str, _Member] = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = node.name
            if name.startswith("_"):
                continue
            is_property = any(
                (isinstance(d, ast.Name) and d.id == "property")
                or (isinstance(d, ast.Attribute) and d.attr in ("setter", "getter", "deleter"))
                for d in node.decorator_list
            )
            kind = "property" if is_property else "method"
            params = () if is_property else _params(node, drop_self=True)
            # property setter/getter pairs: keep the first (getter) entry.
            if name not in members:
                members[name] = _Member(name, kind, params, node)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            name = node.target.id
            if not name.startswith("_"):
                members.setdefault(
                    name, _Member(name, "attribute", (), node)
                )
    return members

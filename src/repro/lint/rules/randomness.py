"""R002 — unsanctioned randomness.

Lockstep replay (the differential fuzzer's core audit) requires every
random draw to come from a seeded ``random.Random`` instance threaded
through constructors.  Any call through the module-level ``random.*``
API (the process-global RNG), an *unseeded* ``random.Random()``,
``os.urandom``, ``secrets.*`` or ``uuid.uuid4`` silently breaks
RNG-parity between backends and between runs.  Registered seams (none
today) live in :data:`repro.lint.config.RNG_SEAMS` as
``path::qualname`` entries.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..config import LintConfig
from ..engine import Finding, ModuleInfo, RepoContext, Rule

__all__ = ["RandomnessRule"]

#: ``random.<fn>`` module-level draws that hit the global RNG.
_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "getrandbits",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "triangular",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "lognormvariate",
    "seed",
    "setstate",
    "getstate",
    "randbytes",
}


class RandomnessRule(Rule):
    id = "R002"
    title = "unsanctioned randomness (breaks lockstep replay)"
    level = "error"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, ctx: RepoContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in ctx:
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        seams = self.config.rng_seams
        for node in ast.walk(module.tree):
            problem: Optional[str] = None
            if isinstance(node, ast.Call):
                problem = _call_problem(node)
            elif isinstance(node, ast.ImportFrom):
                problem = _import_problem(node)
            if problem is None:
                continue
            qualname = _enclosing_qualname(module, node)
            if f"{module.relpath}::{qualname}" in seams:
                continue
            yield self.finding(
                module,
                node,
                f"{problem} in {qualname!r}; draw from a seeded "
                "random.Random threaded through the constructor, or "
                "register the seam in repro.lint.config.RNG_SEAMS",
            )


def _call_problem(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base, attr = func.value.id, func.attr
        if base == "random":
            if attr in _GLOBAL_RANDOM_FNS:
                return f"module-level random.{attr}() uses the global RNG"
            if attr == "Random" and not node.args and not node.keywords:
                return "random.Random() without a seed is OS-entropy seeded"
        if base == "os" and attr == "urandom":
            return "os.urandom() is non-reproducible entropy"
        if base == "secrets":
            return f"secrets.{attr}() is non-reproducible entropy"
        if base == "uuid" and attr == "uuid4":
            return "uuid.uuid4() is non-reproducible entropy"
    if isinstance(func, ast.Name):
        if func.id == "Random" and not node.args and not node.keywords:
            return "Random() without a seed is OS-entropy seeded"
        if func.id == "urandom":
            return "urandom() is non-reproducible entropy"
    return None


def _import_problem(node: ast.ImportFrom) -> Optional[str]:
    if node.module == "random":
        bad = sorted(
            a.name for a in node.names if a.name in _GLOBAL_RANDOM_FNS
        )
        if bad:
            return (
                f"importing global-RNG functions {bad} from random"
            )
    if node.module == "os":
        if any(a.name == "urandom" for a in node.names):
            return "importing os.urandom"
    if node.module == "secrets":
        return "importing from secrets"
    return None


def _enclosing_qualname(module: ModuleInfo, node: ast.AST) -> str:
    parts: List[str] = []
    cur: Optional[ast.AST] = node
    while cur is not None:
        if isinstance(
            cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            parts.append(cur.name)
        cur = module.parents.get(cur)
    return ".".join(reversed(parts)) or "<module>"

"""R004 — journal / crash-point coverage.

The crash-consistency story (transactions + differential crash fuzzing)
only holds if every interior mutation of a backend either runs under
the undo journal or sits at a registered crash-point hook, so the
fuzzer can cut power mid-splice and replay the journal.  A new helper
that splices ``left``/``right`` pointers without journaling is exactly
the bug class the fuzzer cannot see — the tree is silently corruptible
at a point no crash is ever injected.

For each :class:`repro.lint.config.JournalSpec` this rule:

1. finds every method of the named class that *mutates interior
   state* — stores to a structural node attribute (``node_fields``),
   subscript-assigns into a column (``columns``), or calls a
   growing/shrinking list method on a column;
2. requires each such method to reference the journal seam
   (``self._journal``), be registered as a crash-point hook in
   ``testing/crashes.py`` (``_patch(Class, "hook", ...)``), or appear
   in the spec's ``allowlist`` with a justification;
3. cross-checks that every registered crash hook for the class still
   names an existing method (so a rename can't silently un-instrument
   the fuzzer).

**Snapshot-coverage mode** (PR 8): the unified snapshot layer
(``repro.snapshots``) restores a declared set of columns and node
fields, and the crash/snapshot fuzzers' bit-for-bit audits compare
exactly that state.  For each :class:`repro.lint.config.SnapshotSpec`
this rule flags any structural mutation *outside* the covered sets — a
subscript store / list-mutator call on an uncovered private
``self._x`` container, or a store to a node ``__slots__`` field the
snapshot does not restore — because a restore would silently lose it.
It also cross-checks the crash-hook registry: every crash-hooked class
must be claimed by a SnapshotSpec or listed in ``snapshot_exempt``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..config import JournalSpec, LintConfig, SnapshotSpec
from ..engine import Finding, ModuleInfo, RepoContext, Rule

__all__ = ["JournalCoverageRule"]

_LIST_MUTATORS = {"append", "extend", "insert", "pop", "clear", "remove"}


class JournalCoverageRule(Rule):
    id = "R004"
    title = "unjournaled interior mutation (invisible to the crash fuzzer)"
    level = "error"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, ctx: RepoContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        hooks = _crash_hooks(ctx, self.config.crash_points_path)
        for spec in self.config.journal_specs:
            findings.extend(self._check_spec(ctx, spec, hooks))
        for snap_spec in self.config.snapshot_specs:
            findings.extend(self._check_snapshot_spec(ctx, snap_spec))
        findings.extend(self._check_snapshot_registry(ctx, hooks))
        return findings

    def _check_spec(
        self,
        ctx: RepoContext,
        spec: JournalSpec,
        hooks: Optional[Dict[str, Set[str]]],
    ) -> Iterable[Finding]:
        module = ctx.module(spec.path)
        if module is None:
            return
        if spec.class_name is None:
            # Module scan: every top-level function plus every method of
            # every class (the resilience layer's scrub rewrites and
            # checkpoint restores live in module functions).
            owner = spec.path.rsplit("/", 1)[-1]
            methods = _module_functions(module)
            class_hooks: Set[str] = set()
        else:
            owner = spec.class_name
            cls = _find_class(module, spec.class_name)
            if cls is None:
                yield self.finding(
                    module,
                    module.tree,
                    f"journal spec: class {spec.class_name!r} not found in "
                    f"{spec.path} (update repro.lint.config.JOURNAL_SPECS)",
                )
                return
            class_hooks = (
                hooks.get(spec.class_name, set()) if hooks is not None else set()
            )
            methods = {
                node.name: node
                for node in cls.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }

        for name, fn in sorted(methods.items()):
            site = _mutation_site(fn, spec)
            if site is None:
                continue
            if name in spec.allowlist:
                continue
            if name in class_hooks:
                continue
            if _references_journal(fn):
                continue
            node, what = site
            yield self.finding(
                module,
                node,
                f"{owner}.{name} mutates interior state "
                f"({what}) without touching the journal seam and is not "
                "a registered crash-point hook; journal the mutation, "
                "register the hook in testing/crashes.py, or allowlist "
                "the method in repro.lint.config.JOURNAL_SPECS with a "
                "justification",
            )

        # Hook-existence cross-check: a rename must not silently
        # un-instrument the fuzzer.
        crashes_mod = (
            ctx.module(self.config.crash_points_path)
            if hooks is not None and spec.class_name is not None
            else None
        )
        if crashes_mod is not None:
            for hook in sorted(class_hooks):
                if hook not in methods:
                    yield self.finding(
                        crashes_mod,
                        crashes_mod.tree,
                        f"crash-point hook {spec.class_name}.{hook} is "
                        "registered in crash_points() but no such method "
                        f"exists on {spec.class_name} (stale after a "
                        "rename?)",
                    )

    # -- snapshot-coverage mode -------------------------------------------

    def _check_snapshot_spec(
        self, ctx: RepoContext, spec: SnapshotSpec
    ) -> Iterable[Finding]:
        module = ctx.module(spec.path)
        if module is None:
            return
        cls = _find_class(module, spec.class_name)
        if cls is None:
            yield self.finding(
                module,
                module.tree,
                f"snapshot spec: class {spec.class_name!r} not found in "
                f"{spec.path} (update repro.lint.config.SNAPSHOT_SPECS)",
            )
            return
        uncovered_fields = self._uncovered_fields(ctx, spec)
        for node in cls.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in spec.allowlist:
                continue
            site = _uncovered_mutation(node, spec, uncovered_fields)
            if site is None:
                continue
            stmt, what = site
            yield self.finding(
                module,
                stmt,
                f"{spec.class_name}.{node.name} mutates state outside "
                f"snapshot coverage ({what}); a Snapshot/SnapshotState "
                "restore would silently lose it — extend the covered "
                "column/field sets in repro.snapshots.core (and the "
                "restore paths), or allowlist the method in "
                "repro.lint.config.SNAPSHOT_SPECS with a justification",
            )

    def _uncovered_fields(
        self, ctx: RepoContext, spec: SnapshotSpec
    ) -> Set[str]:
        """Node ``__slots__`` fields the snapshot does not restore."""
        if spec.node_class is None:
            return set()
        path, class_name = spec.node_class
        module = ctx.module(path)
        if module is None:
            return set()
        cls = _find_class(module, class_name)
        if cls is None:
            return set()
        return _slots_of(cls) - set(spec.covered_fields)

    def _check_snapshot_registry(
        self, ctx: RepoContext, hooks: Optional[Dict[str, Set[str]]]
    ) -> Iterable[Finding]:
        """Every crash-hooked class must be snapshot-covered or exempt:
        a crash point inside an un-snapshottable structure is a crash
        nobody can recover from."""
        if hooks is None or not self.config.snapshot_specs:
            return
        crashes_mod = ctx.module(self.config.crash_points_path)
        if crashes_mod is None:
            return
        claimed = {spec.class_name for spec in self.config.snapshot_specs}
        for cls_name in sorted(hooks):
            if cls_name in claimed or cls_name in self.config.snapshot_exempt:
                continue
            yield self.finding(
                crashes_mod,
                crashes_mod.tree,
                f"class {cls_name} has registered crash-point hooks but no "
                "SnapshotSpec covers it (and it is not snapshot-exempt); "
                "the crash fuzzer can cut power inside it yet no unified "
                "snapshot path can restore it — add a SnapshotSpec or an "
                "exemption in repro.lint.config",
            )


# ---------------------------------------------------------------------------
# mutation-site detection
# ---------------------------------------------------------------------------


def _mutation_site(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, spec: JournalSpec
) -> Optional[Tuple[ast.AST, str]]:
    """First interior-mutation statement in ``fn``, or None."""
    for node in ast.walk(fn):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            targets = [node.target]
        for target in _flatten_targets(targets):
            what = _target_mutates(target, spec)
            if what is not None:
                return node, what
        if isinstance(node, ast.Call):
            what = _call_mutates(node, spec)
            if what is not None:
                return node, what
    return None


def _flatten_targets(targets: Iterable[ast.expr]) -> Iterable[ast.expr]:
    for t in targets:
        if isinstance(t, (ast.Tuple, ast.List)):
            yield from _flatten_targets(t.elts)
        else:
            yield t


def _target_mutates(
    target: ast.expr, spec: JournalSpec
) -> Optional[str]:
    # node-field store: <expr>.left = ...  (any object: nodes travel)
    if isinstance(target, ast.Attribute) and target.attr in spec.node_fields:
        # `self.<field> = ...` on the tree object itself is a scalar
        # root/metadata store only when the field set is for *nodes*;
        # specs for pointer backends list node attrs, and the tree has
        # no same-named attrs, so flag all of them.
        return f"store to node field .{target.attr}"
    # column subscript store: self._left[i] = ...
    if isinstance(target, ast.Subscript):
        col = _column_of(target.value, spec)
        if col is not None:
            return f"subscript store into column {col}"
    return None


def _call_mutates(node: ast.Call, spec: JournalSpec) -> Optional[str]:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in _LIST_MUTATORS:
        return None
    col = _column_of(func.value, spec)
    if col is not None:
        return f"{func.attr}() on column {col}"
    return None


def _column_of(expr: ast.expr, spec: JournalSpec) -> Optional[str]:
    """``self.<col>`` when <col> is a registered column name — or
    ``<any receiver>.<col>`` when the spec is receiver-agnostic (the
    resilience layer mutates *another object's* columns)."""
    if not isinstance(expr, ast.Attribute) or expr.attr not in spec.columns:
        return None
    if spec.any_receiver:
        recv = expr.value.id if isinstance(expr.value, ast.Name) else "<expr>"
        return f"{recv}.{expr.attr}"
    if isinstance(expr.value, ast.Name) and expr.value.id == "self":
        return f"self.{expr.attr}"
    return None


# ---------------------------------------------------------------------------
# snapshot-coverage detection
# ---------------------------------------------------------------------------


def _uncovered_mutation(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    spec: SnapshotSpec,
    uncovered_fields: Set[str],
) -> Optional[Tuple[ast.AST, str]]:
    """First mutation statement in ``fn`` that touches state outside the
    snapshot's covered column/field sets, or None."""
    for node in ast.walk(fn):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            targets = [node.target]
        for target in _flatten_targets(targets):
            if (
                isinstance(target, ast.Attribute)
                and target.attr in uncovered_fields
            ):
                return node, f"store to uncovered node field .{target.attr}"
            if isinstance(target, ast.Subscript):
                col = _uncovered_column(target.value, spec)
                if col is not None:
                    return node, f"subscript store into uncovered {col}"
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _LIST_MUTATORS
            ):
                col = _uncovered_column(func.value, spec)
                if col is not None:
                    return node, f"{func.attr}() on uncovered {col}"
    return None


def _uncovered_column(expr: ast.expr, spec: SnapshotSpec) -> Optional[str]:
    """``self._<x>`` where ``_<x>`` looks like a per-slot container but
    is not in the spec's covered column set.  Only underscore-prefixed
    attributes count: public attributes and scalar registers are not
    column storage (the snapshot captures scalars separately)."""
    if not spec.columns:
        return None
    if not (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr.startswith("_")
    ):
        return None
    if expr.attr in spec.columns:
        return None
    return f"container self.{expr.attr}"


def _slots_of(cls: ast.ClassDef) -> Set[str]:
    """String entries of a class's ``__slots__`` assignment."""
    for node in cls.body:
        if not (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in node.targets
            )
        ):
            continue
        value = node.value
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            return {
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            }
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return {value.value}
    return set()


def _references_journal(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the method touches the journal seam (``self._journal``
    or a bare ``journal`` name, e.g. a passed-in journal object)."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr == "_journal":
            return True
        if isinstance(node, ast.Name) and node.id == "journal":
            return True
    return False


# ---------------------------------------------------------------------------
# crash-hook extraction
# ---------------------------------------------------------------------------


def _module_functions(
    module: ModuleInfo,
) -> Dict[str, "ast.FunctionDef | ast.AsyncFunctionDef"]:
    """Top-level functions plus every class method, keyed by qualname
    (``fn`` / ``Class.fn``)."""
    out: Dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out[f"{node.name}.{sub.name}"] = sub
    return out


def _find_class(module: ModuleInfo, name: str) -> Optional[ast.ClassDef]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _crash_hooks(
    ctx: RepoContext, crashes_path: str
) -> Optional[Dict[str, Set[str]]]:
    """``{ClassName: {hook, ...}}`` from ``_patch(Class, "hook", ...)``
    calls in the crash-points module, or None when the module is not in
    the scanned target set."""
    module = ctx.module(crashes_path)
    if module is None:
        return None
    hooks: Dict[str, Set[str]] = {}
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "_patch"
            and len(node.args) >= 2
        ):
            continue
        cls_arg, attr_arg = node.args[0], node.args[1]
        if not (
            isinstance(cls_arg, ast.Name)
            and isinstance(attr_arg, ast.Constant)
            and isinstance(attr_arg.value, str)
        ):
            continue
        hooks.setdefault(cls_arg.id, set()).add(attr_arg.value)
    return hooks

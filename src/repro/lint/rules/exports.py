"""R005 — ``__all__`` export hygiene.

The mypy-strict gate runs with ``no_implicit_reexport``, and the
differential fuzzer's op-stream registry imports surfaces by name, so
every library module must declare its public surface explicitly:

* a module with public top-level defs must define ``__all__``
  (a literal list/tuple of string constants, optionally built with
  ``+`` concatenation of such literals);
* every name in ``__all__`` must exist at module top level
  (def/class/assignment/import);
* ``__all__`` must not contain duplicates;
* every *public* top-level class or function must be listed in
  ``__all__`` — an unlisted public def is either missing from the
  export list or should be renamed ``_private``.

Entry-point shims with no importable surface register themselves in
``repro.lint.config.LintConfig.exports_exempt``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..config import LintConfig
from ..engine import Finding, ModuleInfo, RepoContext, Rule

__all__ = ["ExportHygieneRule"]


class ExportHygieneRule(Rule):
    id = "R005"
    title = "__all__ export hygiene"
    level = "error"

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check(self, ctx: RepoContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in ctx:
            if module.relpath in self.config.exports_exempt:
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        top = _top_level_names(module.tree)
        public_defs = _public_defs(module.tree)
        all_node = _find_all_assign(module.tree)

        if all_node is None:
            if public_defs:
                listing = ", ".join(sorted(public_defs)[:4])
                if len(public_defs) > 4:
                    listing += ", ..."
                yield self.finding(
                    module,
                    module.tree,
                    "module has public top-level definitions "
                    f"({listing}) but no __all__; declare the export "
                    "surface explicitly",
                )
            return

        names = _all_names(all_node.value)
        if names is None:
            yield self.finding(
                module,
                all_node,
                "__all__ is not a literal list/tuple of strings; the "
                "export surface must be statically readable",
            )
            return

        seen: Set[str] = set()
        for name in names:
            if name in seen:
                yield self.finding(
                    module,
                    all_node,
                    f"__all__ lists {name!r} more than once",
                )
            seen.add(name)
            if name not in top:
                yield self.finding(
                    module,
                    all_node,
                    f"__all__ exports {name!r} but no top-level "
                    "definition, assignment or import provides it",
                )

        for name, node in sorted(public_defs.items()):
            if name in seen:
                continue
            yield self.finding(
                module,
                node,
                f"public top-level definition {name!r} is not exported "
                "via __all__; list it or rename it with a leading "
                "underscore",
            )


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _find_all_assign(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


def _all_names(expr: ast.expr) -> Optional[List[str]]:
    """Names in an ``__all__`` literal (list/tuple of str constants,
    ``+``-concatenation allowed); None when not statically readable."""
    if isinstance(expr, (ast.List, ast.Tuple)):
        out: List[str] = []
        for elt in expr.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return out
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        left = _all_names(expr.left)
        right = _all_names(expr.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def _target_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _top_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks / import fallbacks: one level deep.
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name == "*":
                            continue
                        names.add(
                            alias.asname or alias.name.split(".")[0]
                        )
                elif isinstance(
                    sub,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    names.add(sub.name)
    return names


def _public_defs(tree: ast.Module) -> "Dict[str, ast.AST]":
    """Public top-level class/function defs (the surface that must be
    exported), keyed by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
        and not node.name.startswith("_")
    }

"""``python -m repro.lint`` entry point."""

from __future__ import annotations

import sys
from typing import List

from .cli import main

__all__: List[str] = []

if __name__ == "__main__":
    sys.exit(main())

"""AST-based rule engine for the repo's static invariants.

The engine loads every target module once into a :class:`ModuleInfo`
(source lines + parsed ``ast`` tree with parent links), hands the whole
:class:`RepoContext` to each registered :class:`Rule`, and collects
:class:`Finding` records.  Machine-readable output mirrors the perf
harness / regression gate convention (``benchmarks/regress.py``): a
single JSON document with a ``schema`` tag, a flat ``findings`` array
and per-rule counts, so CI can diff lint runs the same way it diffs
bench runs.

Suppression: a finding is dropped when its source line (or the line
above it) carries ``# lint: ignore[<RULE-ID>]``.  Suppressions are
deliberate, grep-able escape hatches; repo policy is to prefer the
registered allowlists in :mod:`repro.lint.config` (which carry
justifications) over inline pragmas.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "SCHEMA",
    "Finding",
    "ModuleInfo",
    "RepoContext",
    "Rule",
    "LintReport",
    "discover_files",
    "run_lint",
]

SCHEMA = "repro-lint/1"

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    level: str  # "error" | "warning"
    path: str  # repo-root-relative, forward slashes
    line: int
    col: int
    message: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "level": self.level,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.level}] {self.message}"
        )


class ModuleInfo:
    """One parsed target module."""

    def __init__(self, root: Path, path: Path) -> None:
        self.abspath = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        # Parent links let rules walk outward (e.g. "is this call inside
        # a generator function?").
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed(self, rule: str, lineno: int) -> bool:
        """True when ``# lint: ignore[RULE]`` covers ``lineno``."""
        for text in (self.line_text(lineno), self.line_text(lineno - 1)):
            m = _IGNORE_RE.search(text)
            if m and rule in {r.strip() for r in m.group(1).split(",")}:
                return True
        return False


class RepoContext:
    """Every module visible to the rules, keyed by repo-relative path."""

    def __init__(self, root: Path, modules: Sequence[ModuleInfo]) -> None:
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {
            m.relpath: m for m in modules
        }

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        return self.modules.get(relpath)

    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules.values())


class Rule:
    """Base class: subclasses set ``id``/``title``/``level`` and
    implement :meth:`check` over the whole repo context."""

    id: str = "R000"
    title: str = ""
    level: str = "error"

    def check(self, ctx: RepoContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            level=self.level,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class LintReport:
    """Aggregated run outcome (JSON-serialisable)."""

    root: str
    files: int
    rules: List[str]
    findings: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "root": self.root,
            "files": self.files,
            "rules": self.rules,
            "clean": self.clean,
            "counts": self.counts(),
            "findings": [f.to_json() for f in self.findings],
        }


def discover_files(root: Path, targets: Sequence[str]) -> List[Path]:
    """Expand ``targets`` (files or directories, relative to ``root``)
    into a sorted list of ``.py`` files."""
    seen: Dict[Path, None] = {}
    for target in targets:
        p = (root / target).resolve() if not Path(target).is_absolute() else Path(target)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" not in f.parts:
                    seen.setdefault(f.resolve())
        elif p.is_file():
            seen.setdefault(p.resolve())
        else:
            raise FileNotFoundError(f"lint target not found: {target}")
    return list(seen)


def run_lint(
    root: Path,
    targets: Sequence[str],
    rules: Sequence[Rule],
) -> LintReport:
    """Parse every target module and run every rule over the context."""
    files = discover_files(root, targets)
    modules = [ModuleInfo(root, f) for f in files]
    ctx = RepoContext(root, modules)
    report = LintReport(
        root=str(root),
        files=len(files),
        rules=[r.id for r in rules],
    )
    for rule in rules:
        for finding in rule.check(ctx):
            module = ctx.module(finding.path)
            if module is not None and module.suppressed(
                finding.rule, finding.line
            ):
                continue
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report

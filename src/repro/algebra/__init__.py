"""Algebraic substrate: commutative (semi)rings and affine maps.

These are the label domains of the dynamic tree-contraction machinery
(§4.2 of Reif & Tate 1994).
"""

from .rings import BOOLEAN, FLOAT, INTEGER, Ring, modular_ring, tropical_semiring
from .affine import Affine1, Affine2

__all__ = [
    "Ring",
    "INTEGER",
    "FLOAT",
    "BOOLEAN",
    "modular_ring",
    "tropical_semiring",
    "Affine1",
    "Affine2",
]

"""Commutative rings and semirings used as label domains (§4.2).

The rake-tree label machinery works over any *commutative semiring*: the
label of a contracted node is a pair ``(A, B)`` meaning the node
contributes ``A*x + B`` where ``x`` is the (unknown) value of the subtree
hanging below it.  The paper states the construction for commutative
rings; everything here only needs associativity, commutativity and
distributivity, so semirings such as boolean ``(or, and)`` and tropical
``(min, +)`` are supported as well and exercised by the test suite.

Ring elements are plain Python values (ints, floats, tuples); a
:class:`Ring` instance supplies the operations.  Keeping elements
unboxed avoids per-element object overhead in the hot contraction loops,
per the HPC guides' "avoid needless wrappers in inner loops" advice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..errors import InvalidParameterError

__all__ = [
    "Ring",
    "INTEGER",
    "FLOAT",
    "BOOLEAN",
    "modular_ring",
    "tropical_semiring",
]


@dataclass(frozen=True)
class Ring:
    """A commutative (semi)ring given by its two operations and constants.

    Attributes
    ----------
    name:
        Human-readable identifier (used in reprs and error messages).
    zero, one:
        Additive and multiplicative identities.
    add, mul:
        Binary operations.  Both must be associative and commutative and
        ``mul`` must distribute over ``add``.
    eq:
        Equality predicate on elements (defaults to ``==``; overridden
        for floats to use a tolerance).
    """

    name: str
    zero: Any
    one: Any
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]
    eq: Callable[[Any, Any], bool] = lambda a, b: a == b

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ring({self.name})"

    # -- convenience ------------------------------------------------------
    def sum(self, items: Iterable[Any]) -> Any:
        """Fold ``add`` over an iterable (``zero`` if empty)."""
        acc = self.zero
        for x in items:
            acc = self.add(acc, x)
        return acc

    def product(self, items: Iterable[Any]) -> Any:
        """Fold ``mul`` over an iterable (``one`` if empty)."""
        acc = self.one
        for x in items:
            acc = self.mul(acc, x)
        return acc


def _int_add(a: Any, b: Any) -> Any:
    return a + b


def _int_mul(a: Any, b: Any) -> Any:
    return a * b


INTEGER = Ring("Z", 0, 1, _int_add, _int_mul)
"""The ring of Python integers (arbitrary precision — no overflow)."""

FLOAT = Ring(
    "R",
    0.0,
    1.0,
    _int_add,
    _int_mul,
    eq=lambda a, b: abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b)),
)
"""Floating-point reals with a relative-tolerance equality."""

BOOLEAN = Ring("B", False, True, lambda a, b: a or b, lambda a, b: a and b)
"""The boolean semiring ``(or, and)`` — used e.g. for AND/OR circuits."""


def modular_ring(p: int) -> Ring:
    """The ring of integers modulo ``p`` (``p >= 2``)."""
    if p < 2:
        raise InvalidParameterError(f"modulus must be >= 2, got {p}")
    return Ring(
        f"Z/{p}",
        0,
        1 % p,
        lambda a, b: (a + b) % p,
        lambda a, b: (a * b) % p,
    )


_INF = float("inf")


def tropical_semiring() -> Ring:
    """The (min, +) tropical semiring.

    ``add = min`` with identity ``+inf``; ``mul = +`` with identity ``0``.
    Useful for shortest-path style tree computations; exercised by the
    ablation tests to show the contraction machinery is ring-agnostic.
    """
    return Ring(
        "Trop(min,+)",
        _INF,
        0.0,
        min,
        lambda a, b: a + b,
    )

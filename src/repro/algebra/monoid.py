"""Monoids — the summary domain of the incremental list-prefix structure.

§3 stores ``SUM_v`` at every splitting-tree node.  Nothing in the
construction needs more than associativity and an identity, so the
structure is parameterised by a :class:`Monoid`; the paper's prefix sums
use :func:`sum_monoid`, while the LCA application (§5) uses
:func:`argmin_monoid` over (depth, node) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from .rings import Ring

__all__ = [
    "Monoid",
    "sum_monoid",
    "min_monoid",
    "max_monoid",
    "argmin_monoid",
    "count_monoid",
]


@dataclass(frozen=True)
class Monoid:
    """An associative operation with identity.

    ``ring`` is set only when ``combine`` *is* that ring's addition
    (``sum_monoid``): it asserts the monoid is ring-sum, which lets the
    flat/parallel backends fold prefixes through the exact vectorized
    doubling scan instead of the sequential Python loop.  General
    monoids leave it ``None`` and always fold sequentially.
    """

    name: str
    identity: Any
    combine: Callable[[Any, Any], Any]
    ring: Optional[Ring] = None

    def fold(self, items: Iterable[Any]) -> Any:
        acc = self.identity
        for x in items:
            acc = self.combine(acc, x)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Monoid({self.name})"


def sum_monoid(ring: Ring) -> Monoid:
    """Addition in ``ring`` (the paper's SUM_v)."""
    return Monoid(f"sum[{ring.name}]", ring.zero, ring.add, ring=ring)


def count_monoid() -> Monoid:
    """Integer counting (e.g. 'number of enter-events so far')."""
    return Monoid("count", 0, lambda a, b: a + b)


_INF = float("inf")


def min_monoid() -> Monoid:
    return Monoid("min", _INF, min)


def max_monoid() -> Monoid:
    return Monoid("max", -_INF, max)


def argmin_monoid() -> Monoid:
    """Minimum over ``(key, payload)`` pairs, comparing by key only.

    Ties keep the *leftmost* pair, which makes prefix queries
    deterministic.  Identity is ``(inf, None)``.
    """

    def combine(a: Any, b: Any) -> Any:
        return b if b[0] < a[0] else a

    return Monoid("argmin", (_INF, None), combine)

"""Affine maps over ``ring`` and ``ring**2`` — the §4.2 healing machinery.

Two layers:

* :class:`Affine1` — a map ``x -> a*x + b`` on ring elements.  This is the
  *label* domain of Kosaraju–Delcher tree contraction: each contracted
  node carries an ``Affine1`` telling how its eventual value depends on
  the one uncontracted subtree below it.

* :class:`Affine2` — a map ``(x, y) -> M @ (x, y) + c`` on *pairs* of ring
  elements, i.e. a 2x2 ring matrix plus an offset vector.  Theorem 4.2's
  key observation is that every rake-tree label operation is affine in
  each argument separately, so once one child of a rake-tree node is
  known, the node becomes an ``Affine2`` acting on the other child's
  ``(A, B)`` label.  ``Affine2`` composition is associative, which is what
  lets the wounded rake-tree fragment ``RT(W)`` be re-evaluated *by tree
  contraction itself* rather than level-by-level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from .rings import Ring

__all__ = ["Affine1", "Affine2"]


@dataclass(frozen=True)
class Affine1:
    """The map ``x -> a*x + b`` over ``ring``.

    Instances are immutable; composition returns a new map.  Over a ring,
    the set of such maps is closed under composition and composition is
    associative (this is the linchpin of the paper's §4.2 argument).
    """

    ring: Ring
    a: Any
    b: Any

    @classmethod
    def identity(cls, ring: Ring) -> "Affine1":
        return cls(ring, ring.one, ring.zero)

    @classmethod
    def constant(cls, ring: Ring, value: Any) -> "Affine1":
        """The map that ignores its input: ``x -> value`` (a leaf label)."""
        return cls(ring, ring.zero, value)

    def __call__(self, x: Any) -> Any:
        r = self.ring
        return r.add(r.mul(self.a, x), self.b)

    def compose(self, inner: "Affine1") -> "Affine1":
        """Return ``self ∘ inner``: ``x -> self(inner(x))``.

        ``a(cx + d) + b = (ac)x + (ad + b)`` — exactly the paper's
        small-compress label rule ``(A,B),(C,D) -> (AC, AD + B)``.
        """
        r = self.ring
        return Affine1(
            r,
            r.mul(self.a, inner.a),
            r.add(r.mul(self.a, inner.b), self.b),
        )

    def equal(self, other: "Affine1") -> bool:
        return self.ring.eq(self.a, other.a) and self.ring.eq(self.b, other.b)


Vec2 = Tuple[Any, Any]


@dataclass(frozen=True)
class Affine2:
    """The map ``v -> M @ v + c`` on pairs of ring elements.

    ``m`` is stored row-major as ``((m00, m01), (m10, m11))`` and ``c`` as
    ``(c0, c1)``.  Used to re-evaluate wounded rake trees by contraction:
    partially applying one (known) argument of a rake-tree binary label
    operation yields an ``Affine2`` in the other argument, and these
    compose associatively.
    """

    ring: Ring
    m: Tuple[Vec2, Vec2]
    c: Vec2

    @classmethod
    def identity(cls, ring: Ring) -> "Affine2":
        z, o = ring.zero, ring.one
        return cls(ring, ((o, z), (z, o)), (z, z))

    @classmethod
    def constant(cls, ring: Ring, value: Vec2) -> "Affine2":
        """The map that ignores its input and returns ``value``."""
        z = ring.zero
        return cls(ring, ((z, z), (z, z)), (value[0], value[1]))

    def __call__(self, v: Vec2) -> Vec2:
        r = self.ring
        (m00, m01), (m10, m11) = self.m
        c0, c1 = self.c
        x, y = v
        out0 = r.add(r.add(r.mul(m00, x), r.mul(m01, y)), c0)
        out1 = r.add(r.add(r.mul(m10, x), r.mul(m11, y)), c1)
        return (out0, out1)

    def compose(self, inner: "Affine2") -> "Affine2":
        """Return ``self ∘ inner`` (apply ``inner`` first)."""
        r = self.ring
        (a00, a01), (a10, a11) = self.m
        (b00, b01), (b10, b11) = inner.m
        bc0, bc1 = inner.c
        ac0, ac1 = self.c
        m00 = r.add(r.mul(a00, b00), r.mul(a01, b10))
        m01 = r.add(r.mul(a00, b01), r.mul(a01, b11))
        m10 = r.add(r.mul(a10, b00), r.mul(a11, b10))
        m11 = r.add(r.mul(a10, b01), r.mul(a11, b11))
        c0 = r.add(r.add(r.mul(a00, bc0), r.mul(a01, bc1)), ac0)
        c1 = r.add(r.add(r.mul(a10, bc0), r.mul(a11, bc1)), ac1)
        return Affine2(r, ((m00, m01), (m10, m11)), (c0, c1))

    def equal(self, other: "Affine2") -> bool:
        eq = self.ring.eq
        return (
            all(
                eq(self.m[i][j], other.m[i][j])
                for i in range(2)
                for j in range(2)
            )
            and eq(self.c[0], other.c[0])
            and eq(self.c[1], other.c[1])
        )

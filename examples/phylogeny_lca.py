"""Dynamic phylogenetics: batch LCA under a growing species tree.

Theorem 5.2's headline application.  A phylogenetic tree grows as new
species are sequenced (each placement splits a leaf into two); analysts
concurrently ask for most-recent-common-ancestors of species pairs.
Both the placement batches and the query batches run in
``O(log(|U| log n))`` simulated parallel time on the dynamic Euler
tour + range-argmin machinery.

Run:  python examples/phylogeny_lca.py
"""

from __future__ import annotations

import random

from repro import INTEGER, DynamicLCA, ExprTree, SpanTracker, add_op


def main() -> None:
    rng = random.Random(11)
    tree = ExprTree(INTEGER, root_value=1)
    lca = DynamicLCA(tree, seed=2)
    names = {tree.root.nid: "LUCA"}
    species = [tree.root.nid]

    def place_batch(k: int, round_no: int) -> None:
        """k new species placed concurrently at random leaves."""
        targets = rng.sample(species, min(k, len(species)))
        grown = []
        for t in targets:
            left, right = tree.grow_leaf(t, add_op(), 1, 1)
            grown.append((t, left, right))
            # The split node becomes an ancestor; its left child keeps
            # the old species identity, the right is the new species.
            names[left] = names.pop(t)
            names[right] = f"sp{round_no}.{right}"
            names[t] = f"anc{t}"
            species.remove(t)
            species.extend([left, right])
        tracker = SpanTracker()
        lca.batch_grow(grown, tracker)
        print(
            f"round {round_no:2d}: placed {len(grown)} species "
            f"(now {len(species)}), span={tracker.span}"
        )

    for round_no in range(10):
        place_batch(1 + round_no, round_no)

    # --- concurrent LCA queries ----------------------------------------
    pairs = [tuple(rng.sample(species, 2)) for _ in range(6)]
    tracker = SpanTracker()
    ancestors = lca.batch_lca(pairs, tracker)
    print(f"\n6 concurrent MRCA queries (span={tracker.span}):")
    for (a, b), anc in zip(pairs, ancestors):
        print(f"  MRCA({names[a]}, {names[b]}) = {names[anc]}")

    # --- sanity: agree with pointer-chasing --------------------------------
    def oracle(x, y):
        seen = set()
        node = tree.node(x)
        while node is not None:
            seen.add(node.nid)
            node = node.parent
        node = tree.node(y)
        while node.nid not in seen:
            node = node.parent
        return node.nid

    assert all(oracle(a, b) == anc for (a, b), anc in zip(pairs, ancestors))
    print("\nall answers verified against pointer chasing")


if __name__ == "__main__":
    main()

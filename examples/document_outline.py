"""A collaborative document outline on dynamic tree properties.

§1's running example is maintaining preorder numbers of a dynamic tree —
exactly what a document outline needs: every section's number ("3.2.1"
flattens to a preorder rank) and nesting depth must stay queryable while
many co-authors insert and delete sections *concurrently*.

Built on :class:`repro.DynamicTreeProperties`: preorder numbers and
depths come from the dynamic Euler tour (incrementally maintained),
subtree sizes (how many subsections a section spans) from dynamic tree
contraction (exactly maintained).

Run:  python examples/document_outline.py
"""

from __future__ import annotations

import random

from repro import DynamicTreeProperties, SpanTracker


def main() -> None:
    rng = random.Random(3)
    doc = DynamicTreeProperties(seed=1)
    titles = {doc.tree.root.nid: "root"}

    # Simulate 12 editing rounds; each round several authors split
    # sections simultaneously (a split = grow two children).
    for round_no in range(12):
        leaves = [l.nid for l in doc.tree.leaves_in_order()]
        authors = min(1 + round_no // 2, len(leaves))
        targets = rng.sample(leaves, authors)
        tracker = SpanTracker()
        created = doc.batch_grow(targets, tracker)
        for target, (left, right) in zip(targets, created):
            base = titles.get(target, f"s{target}")
            titles[left] = base + ".a"
            titles[right] = base + ".b"
        print(
            f"round {round_no:2d}: {authors} concurrent splits, "
            f"{doc.n_nodes()} sections, batch span={tracker.span}"
        )

    # --- outline queries -----------------------------------------------
    all_ids = [n.nid for n in doc.tree.nodes_preorder()]
    sample = rng.sample(all_ids, 8)
    tracker = SpanTracker()
    numbers = doc.batch_preorder(sample, tracker)
    depths = doc.batch_num_ancestors(sample, tracker)
    sizes = doc.batch_subtree_sizes(sample, tracker)
    print(f"\n8 concurrent outline queries (span={tracker.span}):")
    print(f"{'section':<18}{'order':>6}{'depth':>7}{'spans':>7}")
    for nid, num, dep, size in sorted(zip(sample, numbers, depths, sizes), key=lambda r: r[1]):
        print(f"{titles.get(nid, f's{nid}'):<18}{num:>6}{dep:>7}{size:>7}")

    # --- a batch of deletions (authors removing empty subsections) -------
    cands = [
        n.nid
        for n in doc.tree.nodes_preorder()
        if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
    ]
    removed = rng.sample(cands, min(3, len(cands)))
    tracker = SpanTracker()
    doc.batch_prune(removed, tracker)
    print(
        f"\npruned {len(removed)} subsections concurrently "
        f"(span={tracker.span}); {doc.n_nodes()} sections remain"
    )

    # Numbers renumber implicitly — the paper's point about preorder
    # being *incrementally* (not exactly) maintainable.
    first_leaf = doc.tree.leaves_in_order()[0].nid
    print(
        "first leaf's preorder number after renumbering:",
        doc.batch_preorder([first_leaf])[0],
    )


if __name__ == "__main__":
    main()

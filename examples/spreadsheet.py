"""A miniature aggregation spreadsheet on dynamic tree contraction.

The motivating §5 workload: a big reactive formula — here, a revenue
roll-up ``Σ_region Π(price, volume, fx-rate)`` over thousands of line
items — that must stay consistent while many cells change *at once*
(e.g. an FX feed ticks every European line simultaneously).

The whole sheet is one expression tree: line items are ``price * volume
* fx`` products, regions sum their line items, and the grand total sums
the regions.  A batch of cell edits is one concurrent update-set ``U``;
dynamic parallel tree contraction heals the sheet in
``O(log(|U| log n))`` simulated parallel time rather than re-evaluating
all ``n`` cells.

Run:  python examples/spreadsheet.py
"""

from __future__ import annotations

import random
import time

from repro import FLOAT, DynamicExpression, ExprTree, SpanTracker, add_op, mul_op
from repro.baselines import RecomputeBaseline


def build_sheet(n_regions: int, items_per_region: int, seed: int = 0):
    """Returns (expression, cell map): cells[(region, item, field)] ->
    leaf node id for field in {'price', 'volume', 'fx'}."""
    rng = random.Random(seed)
    tree = ExprTree(FLOAT, root_value=0.0)
    cells = {}
    region_leaf = tree.root.nid
    for region in range(n_regions):
        if region < n_regions - 1:
            region_leaf, rest = tree.grow_leaf(region_leaf, add_op(), 0.0, 0.0)
        else:
            rest = None
        # Chain the region's items under a sum.
        item_leaf = region_leaf
        for item in range(items_per_region):
            if item < items_per_region - 1:
                item_leaf, nxt = tree.grow_leaf(item_leaf, add_op(), 0.0, 0.0)
            else:
                nxt = None
            # price * (volume * fx)
            price, vol_fx = tree.grow_leaf(
                item_leaf, mul_op(), round(rng.uniform(1, 99), 2), 1.0
            )
            volume, fx = tree.grow_leaf(
                vol_fx, mul_op(), float(rng.randint(1, 500)), 1.0
            )
            cells[(region, item, "price")] = price
            cells[(region, item, "volume")] = volume
            cells[(region, item, "fx")] = fx
            item_leaf = nxt
        region_leaf = rest
    return DynamicExpression(tree, seed=seed + 1), cells


def main() -> None:
    rng = random.Random(42)
    n_regions, items = 40, 50
    sheet, cells = build_sheet(n_regions, items)
    n_cells = len(cells)
    print(f"sheet with {n_regions} regions x {items} items = {n_cells} cells")
    print(f"grand total: {sheet.value():,.2f}")

    # --- FX tick: every 'fx' cell of four regions changes at once --------
    # (|U| = 200 of n = 6000 cells; past |U| ~ n/log n incremental work
    # approaches a full recompute — see benchmarks/bench_e7.)
    tick = [
        (cells[(r, i, "fx")], round(rng.uniform(0.8, 1.2), 4))
        for r in range(4)
        for i in range(items)
    ]
    tracker = SpanTracker()
    t0 = time.perf_counter()
    sheet.batch_set_values(tick, tracker)
    elapsed = time.perf_counter() - t0
    print(
        f"\nFX tick: {len(tick)} concurrent cell edits -> "
        f"span={tracker.span}, work={tracker.work}, "
        f"wall={elapsed * 1000:.1f} ms"
    )
    print(f"new grand total: {sheet.value():,.2f}")

    # --- versus recomputing the whole sheet --------------------------------
    shadow, shadow_cells = build_sheet(n_regions, items)
    base = RecomputeBaseline(shadow.tree)
    t_base = SpanTracker()
    base.batch_set_leaf_values(tick, t_base)
    print(
        f"recompute baseline work: {t_base.work} "
        f"({t_base.work / max(1, tracker.work):.1f}x the incremental work)"
    )
    assert abs(base.value() - sheet.value()) < 1e-6 * abs(sheet.value())

    # --- single-cell edit: the |U| = 1, O(log log n) case ------------------
    tracker = SpanTracker()
    sheet.batch_set_values([(cells[(3, 7, "price")], 123.45)], tracker)
    print(
        f"\nsingle cell edit: span={tracker.span} "
        f"(tree has {n_cells} cells; log2 = "
        f"{n_cells.bit_length()})"
    )
    print(f"grand total: {sheet.value():,.2f}")

    # --- drill-down: query a region subtotal without recomputation ---------
    region_root = sheet.tree.node(cells[(3, 0, "price")]).parent.parent
    while True:
        parent = region_root.parent
        if parent is None or parent.op is None or parent.op.kind != "add":
            break
        # climb to the region's sum node (first add above the items)
        break
    tracker = SpanTracker()
    (subtotal,) = sheet.subexpression_values([region_root.nid], tracker)
    print(f"\nregion-3 line subtotal query: {subtotal:,.2f} (span={tracker.span})")

    print("\nsheet consistent:", abs(sheet.value() - sheet.tree.evaluate()) < 1e-6)


if __name__ == "__main__":
    main()

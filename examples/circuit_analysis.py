"""Live circuit analysis on a dynamic series-parallel network (§6).

A resistor network assembled series/parallel-wise is exactly an SP
decomposition tree; its equivalent resistance is the canonical SP
computation.  This example maintains the equivalent resistance — and,
for the same network viewed as a graph, a §6 combinatorial property
(minimum vertex cover ≈ "fewest probe points touching every branch") —
under concurrent edits: components drift, get swapped, branches are
soldered in (subdivide/duplicate) and removed (dissolve).

Run:  python examples/circuit_analysis.py
"""

from __future__ import annotations

import random

from repro.graphs import (
    DynamicSPProperty,
    effective_resistance,
    minimum_vertex_cover,
    random_sp_tree,
)
from repro.pram.frames import SpanTracker


def main() -> None:
    rng = random.Random(4)
    circuit = random_sp_tree(
        200, seed=7, weights=lambda r: round(r.uniform(10, 470), 1)
    )
    ohms = DynamicSPProperty(circuit, effective_resistance())
    probes = DynamicSPProperty(circuit, minimum_vertex_cover())
    print(
        f"network: {circuit.n_edges()} resistors, "
        f"{circuit.n_vertices()} junctions"
    )
    print(f"equivalent resistance: {ohms.answer():.2f} Ω")
    print(f"minimum probe set: {probes.answer():.0f} junctions")

    # --- thermal drift: many resistors change value at once -------------
    edges = circuit.edges()
    drift = [
        (e.nid, round(e.weight * rng.uniform(0.95, 1.05), 2))
        for e in rng.sample(edges, 20)
    ]
    tracker = SpanTracker()
    wound = ohms.batch_reweight(drift, tracker)
    probes.batch_reweight([])  # cover is weight-independent; nothing to do
    print(
        f"\nthermal drift on 20 resistors: wound={wound} tree nodes, "
        f"span={tracker.span}"
    )
    print(f"equivalent resistance: {ohms.answer():.2f} Ω")

    # --- rework: solder a bypass resistor across 3 components -----------
    targets = [e.nid for e in rng.sample(circuit.edges(), 3)]
    tracker = SpanTracker()
    created = ohms.batch_duplicate(
        [(nid, circuit.node(nid).weight, 1000.0) for nid in targets], tracker
    )
    # keep the second property in sync (it shares the tree)
    for pair in created:
        for cid in pair:
            probes.table[cid] = probes.problem.leaf(circuit.node(cid).weight)
    probes._heal(targets, None)
    print(
        f"\nsoldered 3 bypass branches: span={tracker.span}, "
        f"resistance now {ohms.answer():.2f} Ω, "
        f"probe set {probes.answer():.0f}"
    )

    # --- splice in series elements (adds junctions) -----------------------
    targets = [e.nid for e in rng.sample(circuit.edges(), 3)]
    created = ohms.batch_subdivide(
        [(nid, circuit.node(nid).weight / 2, circuit.node(nid).weight / 2)
         for nid in targets]
    )
    for pair in created:
        for cid in pair:
            probes.table[cid] = probes.problem.leaf(circuit.node(cid).weight)
    probes._heal(targets, None)
    print(
        f"split 3 resistors in half (series): "
        f"{circuit.n_vertices()} junctions, "
        f"resistance {ohms.answer():.2f} Ω (unchanged, as physics demands), "
        f"probe set {probes.answer():.0f}"
    )

    ohms.check_consistency()
    probes.check_consistency()
    print("\nboth maintained properties verified against full recomputation")


if __name__ == "__main__":
    main()

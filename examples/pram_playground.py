"""The machine-model substrate, driven directly.

The paper's model is a CRCW PRAM with a forking operation (§1).  This
example runs three instruction-level programs on the simulator to show
exactly what "parallel time" means in every reported number:

1. recursive-doubling parallel sum (O(log n) steps);
2. pointer-jumping list ranking (Wyllie; O(log n) steps);
3. the Theorem 2.1 processor-activation program with forking, whose
   step count barely moves while n grows 256-fold.

Run:  python examples/pram_playground.py
"""

from __future__ import annotations

import random

from repro import Machine, WritePolicy
from repro.pram.ops import Fork, Local, Read, Write
from repro.splitting import RBSTS
from repro.splitting.activation_pram import activate_on_machine


def parallel_sum(values):
    """Tree-reduction sum: processor i combines cells i and i+stride."""
    n = len(values)
    machine = Machine(policy=WritePolicy.PRIORITY)
    for i, v in enumerate(values):
        machine.memory.poke(("x", i), v)

    def reducer(i, stride):
        a = yield Read(("x", i))
        b = yield Read(("x", i + stride), default=None)
        if b is not None:
            yield Write(("x", i), a + b)

    stride = 1
    total_metrics = None
    while stride < n:
        for i in range(0, n - stride, 2 * stride):
            machine.spawn(reducer(i, stride))
        machine.run()
        stride *= 2
    return machine.memory.read(("x", 0)), machine.metrics


def list_ranking(n):
    """Wyllie's pointer jumping (the paper's §4 substrate for ordering
    the leaves of T)."""
    machine = Machine(policy=WritePolicy.PRIORITY)
    order = list(range(n))
    random.Random(0).shuffle(order)
    for pos, node in enumerate(order):
        nxt = order[pos + 1] if pos + 1 < n else None
        machine.memory.poke(("next", node), nxt)
        machine.memory.poke(("rank", node), 1 if nxt is not None else 0)

    def ranker(i):
        while True:
            nxt = yield Read(("next", i))
            if nxt is None:
                return
            r = yield Read(("rank", i))
            r2 = yield Read(("rank", nxt))
            n2 = yield Read(("next", nxt))
            yield Write(("rank", i), r + r2)
            yield Write(("next", i), n2)

    for i in range(n):
        machine.spawn(ranker(i))
    metrics = machine.run()
    ranks = {i: machine.memory.read(("rank", i)) for i in range(n)}
    return ranks, metrics


def main() -> None:
    values = list(range(1, 257))
    total, metrics = parallel_sum(values)
    print(
        f"parallel sum of 256 values = {total} "
        f"(steps={metrics.steps}, peak procs={metrics.peak_processors})"
    )

    ranks, metrics = list_ranking(256)
    print(
        f"list ranking of 256 nodes: steps={metrics.steps}, "
        f"work={metrics.work} (sequential would be 256 steps)"
    )

    print("\nTheorem 2.1 activation program (forking CRCW PRAM):")
    print(f"{'n':>8} {'steps':>6} {'peak procs':>11} {'work':>7}")
    for exp in (10, 14, 18):
        n = 1 << exp
        tree = RBSTS(range(n), seed=exp)
        leaves = [tree.leaf_at(i) for i in random.Random(exp).sample(range(n), 4)]
        res = activate_on_machine(tree, leaves)
        print(
            f"{n:>8} {res.metrics.steps:>6} "
            f"{res.metrics.peak_processors:>11} {res.metrics.work:>7}"
        )
    print("(steps stay nearly flat while n grows 256x — the point of §2)")


if __name__ == "__main__":
    main()

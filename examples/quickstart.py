"""Quickstart: dynamic parallel tree contraction in five minutes.

Builds a random arithmetic expression over the integers, then processes
concurrent batches of the paper's four request types — leaf relabels,
operator changes, sub-expression growth, pruning and node-value queries
— printing the simulated parallel cost (span) of each batch next to the
sequential and recompute baselines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import INTEGER, DynamicExpression, SpanTracker, add_op, mul_op
from repro.baselines import RecomputeBaseline


def main() -> None:
    rng = random.Random(7)
    n = 4096
    expr = DynamicExpression.from_random(INTEGER, n, seed=1)
    print(f"expression with {expr.n_leaves()} leaves")
    print(f"value (exactly maintained, O(1) read): {expr.value()}")

    # --- a batch of concurrent leaf updates -----------------------------
    leaves = expr.leaf_ids()
    updates = [(nid, rng.randint(-9, 9)) for nid in rng.sample(leaves, 16)]
    tracker = SpanTracker()
    expr.batch_set_values(updates, tracker)
    print(
        f"\nbatch of {len(updates)} leaf updates:"
        f" span={tracker.span} work={tracker.work}"
        f" (wound: {expr.last_stats['wound']} rake-tree labels)"
    )

    # versus recomputing from scratch:
    shadow = DynamicExpression.from_random(INTEGER, n, seed=1)
    base = RecomputeBaseline(shadow.tree)
    t_base = SpanTracker()
    base.batch_set_leaf_values(updates, t_base)
    print(
        f"recompute-from-scratch baseline: span={t_base.span} "
        f"work={t_base.work}  ({t_base.work // max(1, tracker.work)}x more work)"
    )
    assert expr.value() == base.value()

    # --- concurrent operator flips ------------------------------------
    internal = expr.internal_ids()
    tracker = SpanTracker()
    expr.batch_set_ops(
        [(nid, mul_op()) for nid in rng.sample(internal, 4)], tracker
    )
    print(f"\n4 operator changes: span={tracker.span}, value={expr.value()}")

    # --- grow and prune sub-expressions ----------------------------------
    tracker = SpanTracker()
    created = expr.batch_grow(
        [(nid, add_op(), 1, 2) for nid in rng.sample(expr.leaf_ids(), 8)],
        tracker,
    )
    print(
        f"\ngrew 8 leaf pairs: span={tracker.span}, "
        f"fresh rake-tree nodes={expr.last_stats['fresh_rt_nodes']}"
    )
    # ... and prune two of the freshly grown pairs back off.
    grown_parents = [
        expr.tree.node(left).parent.nid for left, _ in created[:2]
    ]
    tracker = SpanTracker()
    expr.batch_prune([(nid, 0) for nid in grown_parents], tracker)
    print(f"pruned 2 pairs back: span={tracker.span}, value={expr.value()}")

    # --- query values at interior nodes -----------------------------------
    tracker = SpanTracker()
    targets = rng.sample(expr.internal_ids(), 5)
    values = expr.subexpression_values(targets, tracker)
    print(f"\n5 sub-expression queries: span={tracker.span}")
    for nid, v in zip(targets, values):
        print(f"  node {nid}: {v}")

    print("\nconsistency:", expr.value() == expr.tree.evaluate())


if __name__ == "__main__":
    main()

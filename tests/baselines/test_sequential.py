"""The one-at-a-time sequential comparator (§1.2)."""

import random

from repro.algebra.rings import INTEGER
from repro.baselines.sequential import SequentialContraction
from repro.contraction.dynamic import DynamicTreeContraction
from repro.pram.frames import SpanTracker
from repro.trees.builders import random_expression_tree
from repro.trees.nodes import add_op


def test_produces_same_values_as_parallel_engine():
    tree_a = random_expression_tree(INTEGER, 80, seed=0)
    tree_b = random_expression_tree(INTEGER, 80, seed=0)
    seq = SequentialContraction(tree_a, seed=1)
    par = DynamicTreeContraction(tree_b, seed=1)
    rng = random.Random(0)
    leaves = [l.nid for l in tree_a.leaves_in_order()]
    updates = [(nid, rng.randint(-5, 5)) for nid in rng.sample(leaves, 10)]
    seq.batch_set_leaf_values(updates)
    par.batch_set_leaf_values(updates)
    assert seq.value() == par.value() == tree_a.evaluate()


def test_sequential_span_equals_work():
    tree = random_expression_tree(INTEGER, 256, seed=1)
    seq = SequentialContraction(tree, seed=2)
    tracker = SpanTracker()
    leaves = [l.nid for l in tree.leaves_in_order()]
    seq.batch_set_leaf_values([(nid, 1) for nid in leaves[:16]], tracker)
    assert tracker.span == tracker.work  # nothing overlaps


def test_sequential_span_linear_in_u():
    tree = random_expression_tree(INTEGER, 512, seed=2)
    seq = SequentialContraction(tree, seed=3)
    leaves = [l.nid for l in tree.leaves_in_order()]
    spans = []
    for k in (4, 16):
        tracker = SpanTracker()
        seq.batch_set_leaf_values([(nid, 1) for nid in leaves[:k]], tracker)
        spans.append(tracker.span)
    assert spans[1] >= 3 * spans[0]  # ~4x the requests, ~4x the span


def test_parallel_beats_sequential_on_batches():
    """The §1.2 work-optimality picture: same work order, much lower span."""
    tree_a = random_expression_tree(INTEGER, 1024, seed=3)
    tree_b = random_expression_tree(INTEGER, 1024, seed=3)
    seq = SequentialContraction(tree_a, seed=4)
    par = DynamicTreeContraction(tree_b, seed=4)
    leaves = [l.nid for l in tree_a.leaves_in_order()]
    updates = [(nid, 2) for nid in leaves[:64]]
    t_seq, t_par = SpanTracker(), SpanTracker()
    seq.batch_set_leaf_values(updates, t_seq)
    par.batch_set_leaf_values(updates, t_par)
    assert t_par.span < t_seq.span / 4
    assert seq.value() == par.value()


def test_sequential_structural_ops():
    tree = random_expression_tree(INTEGER, 40, seed=4)
    seq = SequentialContraction(tree, seed=5)
    leaves = [l.nid for l in tree.leaves_in_order()]
    created = seq.batch_grow([(nid, add_op(), 1, 2) for nid in leaves[:3]])
    assert len(created) == 3
    assert seq.value() == tree.evaluate()
    seq.batch_prune([(leaves[0], 7)])
    assert seq.value() == tree.evaluate()
    qs = seq.query_values([tree.root.nid])
    assert qs == [tree.evaluate()]

"""Link-cut trees [16] against a pointer-chasing forest oracle."""

import random

import pytest

from repro.baselines.linkcut import LinkCutForest


class OracleForest:
    def __init__(self):
        self.parent = {}
        self.value = {}

    def add(self, k, v):
        self.parent[k] = None
        self.value[k] = v

    def path(self, k):
        out = []
        while k is not None:
            out.append(k)
            k = self.parent[k]
        return out


def build_random(n, seed):
    rng = random.Random(seed)
    f, o = LinkCutForest(), OracleForest()
    for k in range(n):
        v = rng.randint(-9, 9)
        f.make_node(k, v)
        o.add(k, v)
    for k in range(1, n):
        p = rng.randint(0, k - 1)
        f.link(k, p)
        o.parent[k] = p
    return f, o, rng


def test_duplicate_key_rejected():
    f = LinkCutForest()
    f.make_node(1)
    with pytest.raises(KeyError):
        f.make_node(1)
    with pytest.raises(KeyError):
        f.find_root(99)


def test_path_queries_match_oracle():
    f, o, rng = build_random(150, 0)
    for _ in range(100):
        k = rng.randint(0, 149)
        path = o.path(k)
        assert f.find_root(k) == path[-1]
        assert f.depth(k) == len(path) - 1
        assert f.path_sum(k) == sum(o.value[x] for x in path)
        assert f.path_min(k) == min(o.value[x] for x in path)


def test_lca_matches_oracle():
    f, o, rng = build_random(120, 1)
    for _ in range(80):
        a, b = rng.randint(0, 119), rng.randint(0, 119)
        pa, pb = o.path(a), set(o.path(b))
        expect = next(x for x in pa if x in pb)
        assert f.lca(a, b) == expect


def test_cut_creates_separate_trees():
    f = LinkCutForest()
    for k in range(3):
        f.make_node(k)
    f.link(1, 0)
    f.link(2, 1)
    assert f.connected(2, 0)
    f.cut(1)
    assert not f.connected(1, 0)
    assert f.find_root(2) == 1
    assert f.lca(2, 0) is None


def test_cut_root_rejected_and_relink():
    f = LinkCutForest()
    f.make_node(0)
    f.make_node(1)
    with pytest.raises(ValueError):
        f.cut(0)
    f.link(1, 0)
    with pytest.raises(ValueError):
        f.link(1, 0)  # 1 no longer a root... also cycle check
    f.cut(1)
    f.link(1, 0)
    assert f.find_root(1) == 0


def test_self_link_cycle_rejected():
    f = LinkCutForest()
    f.make_node(0)
    f.make_node(1)
    f.link(1, 0)
    with pytest.raises(ValueError):
        f.link(0, 1)


def test_set_value_affects_aggregates():
    f, o, rng = build_random(60, 2)
    for _ in range(40):
        k = rng.randint(0, 59)
        v = rng.randint(-9, 9)
        f.set_value(k, v)
        o.value[k] = v
        probe = rng.randint(0, 59)
        path = o.path(probe)
        assert f.path_sum(probe) == sum(o.value[x] for x in path)


def test_randomized_link_cut_storm():
    f, o, rng = build_random(100, 3)
    for _ in range(300):
        k = rng.randint(1, 99)
        if o.parent[k] is not None:
            f.cut(k)
            o.parent[k] = None
        else:
            while True:
                tgt = rng.randint(0, 99)
                if k not in o.path(tgt):
                    break
            f.link(k, tgt)
            o.parent[k] = tgt
        probe = rng.randint(0, 99)
        path = o.path(probe)
        assert f.find_root(probe) == path[-1]
        assert f.depth(probe) == len(path) - 1


def test_amortised_cost_logarithmic():
    """Total rotations over m operations on an n-node tree should be
    O(m log n), nowhere near m·n."""
    import math

    f, o, rng = build_random(256, 4)
    f.rotations = 0
    m = 500
    for _ in range(m):
        f.path_sum(rng.randint(0, 255))
    assert f.rotations <= 8 * m * math.log2(256)

"""The no-shortcut activation baseline."""

import random

from repro.baselines.naive_walk import activate_by_walking, deactivate_walk
from repro.pram.frames import SpanTracker
from repro.splitting.activation import activate, ancestors_closure, deactivate
from repro.splitting.rbsts import RBSTS


def test_marks_exactly_the_parse_tree():
    rng = random.Random(0)
    t = RBSTS(range(300), seed=0)
    leaves = [t.leaf_at(i) for i in rng.sample(range(300), 7)]
    result = activate_by_walking(leaves)
    assert result.node_set() == ancestors_closure(leaves)
    deactivate_walk(result)
    t.check_invariants()


def test_rounds_equal_deepest_leaf_depth():
    t = RBSTS(range(200), seed=1)
    leaf = max(t.leaves(), key=lambda l: l.depth)
    result = activate_by_walking([leaf])
    assert result.rounds == leaf.depth
    deactivate_walk(result)


def test_early_stop_bounds_work():
    """Work is O(|PT(U)|), not |U| * depth, thanks to early stopping."""
    t = RBSTS(range(1024), seed=2)
    leaves = [t.leaf_at(i) for i in range(0, 1024, 64)]
    result = activate_by_walking(leaves)
    assert result.work <= 2 * len(result.activated)
    deactivate_walk(result)


def test_shortcut_activation_beats_walking_at_scale():
    """E1's headline shape: rounds(naive) ≈ depth grows with log n,
    rounds(shortcut) ≈ log(|U| log n) barely grows.  At simulator scale
    the absolute constants are close, so assert on growth."""
    naive_r, smart_r = [], []
    for exp in (10, 18):
        n = 1 << exp
        t = RBSTS(range(n), seed=3)
        leaves = [t.leaf_at(random.Random(exp).randrange(n))]
        naive = activate_by_walking(leaves)
        deactivate_walk(naive)
        smart = activate(t, leaves)
        deactivate(smart)
        assert naive.node_set() == smart.node_set()
        naive_r.append(naive.rounds)
        smart_r.append(smart.rounds_total)
    assert naive_r[1] - naive_r[0] >= 5  # depth grew by ~8 levels
    # Activation grows like log log n — strictly slower than the walk.
    assert smart_r[1] - smart_r[0] < naive_r[1] - naive_r[0]
    assert smart_r[1] < naive_r[1]


def test_tracker_charges():
    t = RBSTS(range(100), seed=4)
    tracker = SpanTracker()
    result = activate_by_walking([t.leaf_at(0)], tracker)
    assert tracker.span == result.rounds
    assert tracker.work == result.work
    deactivate_walk(result)

"""The recompute-from-scratch comparator."""

import random

from repro.algebra.rings import INTEGER
from repro.baselines.recompute import RecomputeBaseline
from repro.contraction.dynamic import DynamicTreeContraction
from repro.pram.frames import SpanTracker
from repro.trees.builders import random_expression_tree
from repro.trees.nodes import add_op, mul_op


def test_recompute_values_match_dynamic_engine():
    tree_a = random_expression_tree(INTEGER, 64, seed=0)
    tree_b = random_expression_tree(INTEGER, 64, seed=0)
    base = RecomputeBaseline(tree_a)
    dyn = DynamicTreeContraction(tree_b, seed=1)
    rng = random.Random(0)
    for _ in range(8):
        leaves = [l.nid for l in tree_a.leaves_in_order()]
        updates = [(nid, rng.randint(-4, 4)) for nid in rng.sample(leaves, 3)]
        base.batch_set_leaf_values(updates)
        dyn.batch_set_leaf_values(updates)
        assert base.value() == dyn.value()


def test_recompute_work_linear_in_n():
    tree = random_expression_tree(INTEGER, 2048, seed=1)
    base = RecomputeBaseline(tree)
    tracker = SpanTracker()
    leaf = tree.leaves_in_order()[0]
    base.batch_set_leaf_values([(leaf.nid, 1)], tracker)
    assert tracker.work >= 2000  # whole-tree contraction every time


def test_dynamic_beats_recompute_in_work():
    tree_a = random_expression_tree(INTEGER, 4096, seed=2)
    tree_b = random_expression_tree(INTEGER, 4096, seed=2)
    base = RecomputeBaseline(tree_a)
    dyn = DynamicTreeContraction(tree_b, seed=3)
    leaf = tree_a.leaves_in_order()[7].nid
    t_base, t_dyn = SpanTracker(), SpanTracker()
    base.batch_set_leaf_values([(leaf, 9)], t_base)
    dyn.batch_set_leaf_values([(leaf, 9)], t_dyn)
    assert base.value() == dyn.value()
    assert t_dyn.work < t_base.work / 10


def test_structural_ops_and_queries():
    tree = random_expression_tree(INTEGER, 30, seed=3)
    base = RecomputeBaseline(tree)
    leaves = [l.nid for l in tree.leaves_in_order()]
    base.batch_grow([(leaves[0], mul_op(), 2, 3)])
    base.batch_set_ops([(leaves[0], add_op())])
    assert base.value() == tree.evaluate()
    base.batch_prune([(leaves[0], 5)])
    assert base.value() == tree.evaluate()
    internal = [n.nid for n in tree.nodes_preorder() if not n.is_leaf][:3]
    assert base.query_values(internal) == [tree.evaluate(at=nid) for nid in internal]

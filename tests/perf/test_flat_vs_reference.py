"""Differential harness: FlatRBSTS pinned op-for-op against the
reference RBSTS.

The flat backend's equivalence contract (see
``src/repro/perf/flat_rbsts.py``) promises *bit-identical* trees for
the same seed and operation sequence — not merely the same
distribution.  These tests drive randomized mixed batch sequences
through both backends in lockstep and compare

* tree shapes (preorder ``is_leaf``/``n_leaves``/``depth``/``height``),
* leaf items and exactly-maintained summaries,
* shortcut lists (as target-depth tuples, position by position),
* ``last_batch_stats`` (rebuild mass, sites, charged work/span),
* Theorem 2.1 activation round/processor counts,
* list-prefix and contraction answers built on top.

Between hypothesis and the seed-matrix test the harness covers well
over 200 distinct random operation sequences.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import UnknownNodeError
from repro.listprefix.structure import IncrementalListPrefix
from repro.perf.flat_rbsts import FlatLeaf, FlatRBSTS
from repro.pram.frames import SpanTracker
from repro.splitting.activation import activate, ancestors_closure, deactivate
from repro.splitting.build import Summarizer
from repro.splitting.rbsts import RBSTS

SUM = Summarizer(sum_monoid(INTEGER), lambda item: item)


def shape_signature(tree):
    """Backend-independent preorder signature of an RBSTS.

    One tuple per node: ``(is_leaf, n_leaves, depth, height, item,
    shortcut_target_depths, summary)`` — everything the paper's
    invariants constrain.
    """
    sig = []
    if isinstance(tree, FlatRBSTS):
        left, right = tree._left, tree._right
        depth_arr = tree._depth
        stack = [tree.root_index]
        while stack:
            v = stack.pop()
            leaf = left[v] == -1
            sc = tree._shortcuts[v]
            sig.append(
                (
                    leaf,
                    tree._n_leaves[v],
                    depth_arr[v],
                    tree._height[v],
                    tree._item[v] if leaf else None,
                    None if sc is None else tuple(depth_arr[s] for s in sc),
                    tree._summary[v],
                )
            )
            if not leaf:
                stack.append(right[v])
                stack.append(left[v])
    else:
        stack = [tree.root]
        while stack:
            v = stack.pop()
            sc = v.shortcuts
            sig.append(
                (
                    v.is_leaf,
                    v.n_leaves,
                    v.depth,
                    v.height,
                    v.item if v.is_leaf else None,
                    None if sc is None else tuple(s.depth for s in sc),
                    v.summary,
                )
            )
            if not v.is_leaf:
                stack.append(v.right)
                stack.append(v.left)
    return sig


def make_pair(n, seed, summarized=True):
    items = list(range(n))
    kw = {"summarizer": SUM} if summarized else {}
    ref = RBSTS(items, seed=seed, **kw)
    flat = RBSTS(items, seed=seed, backend="flat", **kw)
    assert isinstance(flat, FlatRBSTS)
    return ref, flat


def assert_twins(ref, flat):
    assert shape_signature(ref) == shape_signature(flat)
    ref.check_invariants()
    flat.check_invariants()


# ---------------------------------------------------------------------------
# construction + the backend switch
# ---------------------------------------------------------------------------


def test_backend_switch_dispatches():
    flat = RBSTS(range(8), backend="flat")
    assert isinstance(flat, FlatRBSTS)
    assert isinstance(RBSTS(range(8)), RBSTS)
    with pytest.raises(ValueError):
        RBSTS(range(8), backend="columnar")


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("n", [1, 2, 3, 7, 64, 257])
def test_same_seed_same_tree(n, seed):
    ref, flat = make_pair(n, seed)
    assert_twins(ref, flat)
    assert [h.item for h in ref.leaves()] == [h.item for h in flat.leaves()]


# ---------------------------------------------------------------------------
# the main differential mix (hypothesis: 120 sequences here, plus the
# 96-cell seed matrix below and the structure/contraction mixes)
# ---------------------------------------------------------------------------


@st.composite
def op_sequences(draw):
    n0 = draw(st.integers(2, 48))
    seed = draw(st.integers(0, 2**16))
    n_ops = draw(st.integers(1, 8))
    ops = []
    for _ in range(n_ops):
        ops.append(
            draw(
                st.sampled_from(
                    ["ins1", "del1", "bins", "bdel", "bset", "activate"]
                )
            )
        )
    return n0, seed, ops, draw(st.randoms(use_true_random=False))


@given(op_sequences())
@settings(
    # The acceptance contract asks for >= 200 random op sequences per
    # backend pair; this property alone supplies them (the seed-matrix
    # and same-seed tests below add ~90 more).
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_mixed_ops_differential(case):
    n0, seed, ops, rnd = case
    ref, flat = make_pair(n0, seed)
    for op in ops:
        n = ref.n_leaves
        if op == "ins1":
            idx = rnd.randint(0, n)
            ref.insert(idx, 1000 + idx)
            flat.insert(idx, 1000 + idx)
        elif op == "del1":
            if n < 2:
                continue
            idx = rnd.randrange(n)
            ref.delete(ref.leaf_at(idx))
            flat.delete(flat.leaf_at(idx))
        elif op == "bins":
            k = rnd.randint(1, 5)
            reqs = sorted(
                {rnd.randint(0, n): 2000 + j for j in range(k)}.items()
            )
            rh = ref.batch_insert(reqs)
            fh = flat.batch_insert(reqs)
            assert [h.item for h in rh] == [h.item for h in fh]
            assert ref.last_batch_stats == flat.last_batch_stats
        elif op == "bdel":
            if n < 3:
                continue
            k = rnd.randint(1, min(4, n - 1))
            idxs = sorted(rnd.sample(range(n), k))
            ref.batch_delete([ref.leaf_at(i) for i in idxs])
            flat.batch_delete([flat.leaf_at(i) for i in idxs])
            assert ref.last_batch_stats == flat.last_batch_stats
        elif op == "bset":
            k = rnd.randint(1, min(4, n))
            idxs = sorted(rnd.sample(range(n), k))
            ref.batch_update_items(
                [(ref.leaf_at(i), -i) for i in idxs]
            )
            flat.batch_update_items(
                [(flat.leaf_at(i), -i) for i in idxs]
            )
        elif op == "activate":
            k = rnd.randint(1, min(6, n))
            idxs = sorted(rnd.sample(range(n), k))
            r = activate(ref, [ref.leaf_at(i) for i in idxs])
            f = activate(flat, [flat.leaf_at(i) for i in idxs])
            assert (
                r.rounds_stage1,
                r.rounds_stage2,
                r.rounds_stage3,
                r.processors,
                r.peak_processors,
                r.threshold,
                r.fallback_walk_steps,
            ) == (
                f.rounds_stage1,
                f.rounds_stage2,
                f.rounds_stage3,
                f.processors,
                f.peak_processors,
                f.threshold,
                f.fallback_walk_steps,
            )
            assert len(r.activated) == len(f.activated)
            deactivate(r)
            deactivate(f)
        assert_twins(ref, flat)


@pytest.mark.parametrize("seed", range(24))
def test_seed_matrix_long_mix(seed):
    """A longer deterministic mix per seed (24 sequences x 16 batches)."""
    rnd = random.Random(0xABCDEF ^ seed)
    ref, flat = make_pair(rnd.randint(4, 120), seed)
    for _ in range(16):
        n = ref.n_leaves
        kind = rnd.choice(["bins", "bdel", "single"])
        if kind == "bins":
            reqs = sorted(
                {rnd.randint(0, n): rnd.randint(-99, 99) for _ in range(4)}.items()
            )
            ref.batch_insert(reqs)
            flat.batch_insert(reqs)
            assert ref.last_batch_stats == flat.last_batch_stats
        elif kind == "bdel" and n > 4:
            idxs = sorted(rnd.sample(range(n), rnd.randint(1, 3)))
            ref.batch_delete([ref.leaf_at(i) for i in idxs])
            flat.batch_delete([flat.leaf_at(i) for i in idxs])
            assert ref.last_batch_stats == flat.last_batch_stats
        else:
            idx = rnd.randint(0, n)
            ref.insert(idx, idx)
            flat.insert(idx, idx)
        assert_twins(ref, flat)


# ---------------------------------------------------------------------------
# adversarial workload cells: delete-heavy churn and degenerate batch
# shapes (sorted runs, duplicate positions, boundary indices) that the
# uniform mixes above rarely produce
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_delete_heavy_churn(seed):
    """Shrink a 96-leaf pair down to 2 leaves through delete-dominated
    batches (3 deletes per insert), then regrow; the free-list and the
    repair pass both get exercised far more than in the uniform mix."""
    rnd = random.Random(0xDE1E7E ^ seed)
    ref, flat = make_pair(96, seed)
    while ref.n_leaves > 2:
        n = ref.n_leaves
        k = min(rnd.randint(3, 6), n - 1)
        idxs = sorted(rnd.sample(range(n), k))
        ref.batch_delete([ref.leaf_at(i) for i in idxs])
        flat.batch_delete([flat.leaf_at(i) for i in idxs])
        assert ref.last_batch_stats == flat.last_batch_stats
        if rnd.random() < 0.25:
            pos = rnd.randint(0, ref.n_leaves)
            ref.insert(pos, -7)
            flat.insert(pos, -7)
        assert_twins(ref, flat)
    # Regrow from the floor: the slab must absorb the churn.
    for j in range(10):
        reqs = [(rnd.randint(0, ref.n_leaves), 100 + j)]
        ref.batch_insert(reqs)
        flat.batch_insert(reqs)
        assert_twins(ref, flat)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize(
    "style", ["sorted_asc", "sorted_desc", "duplicate", "boundary"]
)
def test_adversarial_batch_shapes(style, seed):
    """Degenerate insert/delete position patterns.

    * ``sorted_asc`` / ``sorted_desc``: monotone runs concentrate all
      rebuild sites on one flank of the tree;
    * ``duplicate``: every insert lands at one position (the paper's
      worst case for a single Theorem 2.2 entry point);
    * ``boundary``: positions pinned to 0 and ``n`` (prepend/append).
    """
    rnd = random.Random(1000 * seed + 17)
    ref, flat = make_pair(24, seed)
    for step in range(8):
        n = ref.n_leaves
        if style == "sorted_asc":
            reqs = [(min(i, n), 10 * step + i) for i in range(5)]
            del_idxs = list(range(min(3, n - 1)))
        elif style == "sorted_desc":
            reqs = [(max(n - i, 0), 10 * step + i) for i in range(5)]
            del_idxs = sorted(range(n - 1, max(n - 4, 0), -1))
        elif style == "duplicate":
            pos = rnd.randint(0, n)
            reqs = [(pos, 10 * step + i) for i in range(5)]
            del_idxs = [rnd.randrange(n)] if n > 1 else []
        else:  # boundary
            reqs = [(0, -step), (n, step), (0, -step - 1), (n, step + 1)]
            del_idxs = ([0, n - 1] if n > 2 else [])
        rh = ref.batch_insert(reqs)
        fh = flat.batch_insert(reqs)
        assert [h.item for h in rh] == [h.item for h in fh]
        assert ref.last_batch_stats == flat.last_batch_stats
        assert_twins(ref, flat)
        del_idxs = sorted(set(del_idxs))
        if del_idxs and ref.n_leaves - len(del_idxs) >= 1:
            ref.batch_delete([ref.leaf_at(i) for i in del_idxs])
            flat.batch_delete([flat.leaf_at(i) for i in del_idxs])
            assert ref.last_batch_stats == flat.last_batch_stats
            assert_twins(ref, flat)
    assert [h.item for h in ref.leaves()] == [h.item for h in flat.leaves()]


# ---------------------------------------------------------------------------
# tracker parity: charged simulated costs agree batch-for-batch
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_tracker_charges_identical(seed):
    ref, flat = make_pair(64, seed)
    rnd = random.Random(seed)
    for _ in range(6):
        n = ref.n_leaves
        tr_r, tr_f = SpanTracker(), SpanTracker()
        reqs = sorted({rnd.randint(0, n): 5 for _ in range(3)}.items())
        ref.batch_insert(reqs, tr_r)
        flat.batch_insert(reqs, tr_f)
        assert (tr_r.work, tr_r.span) == (tr_f.work, tr_f.span)
        tr_r, tr_f = SpanTracker(), SpanTracker()
        idxs = sorted(rnd.sample(range(ref.n_leaves), 2))
        ref.batch_delete([ref.leaf_at(i) for i in idxs], tr_r)
        flat.batch_delete([flat.leaf_at(i) for i in idxs], tr_f)
        assert (tr_r.work, tr_r.span) == (tr_f.work, tr_f.span)


# ---------------------------------------------------------------------------
# activation against the closure oracle on the flat backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_flat_activation_matches_closure_oracle(seed):
    rnd = random.Random(seed)
    ref, flat = make_pair(rnd.randint(16, 300), seed)
    k = rnd.randint(1, 12)
    idxs = sorted(rnd.sample(range(ref.n_leaves), k))
    rl = [ref.leaf_at(i) for i in idxs]
    fl = [flat.leaf_at(i) for i in idxs]
    r = activate(ref, rl)
    f = activate(flat, fl)
    # Same *size* of PT(U), and the reference matches the brute oracle.
    assert r.node_set() == ancestors_closure(rl)
    assert len(f.node_set()) == len(r.node_set())
    deactivate(r)
    deactivate(f)
    flat.check_invariants()  # clean active/low cells after deactivate


# ---------------------------------------------------------------------------
# handle durability and slab hygiene
# ---------------------------------------------------------------------------


def test_flat_handles_survive_rebuilds_and_die_on_delete():
    flat = RBSTS(range(32), seed=5, backend="flat")
    h10 = flat.leaf_at(10)
    flat.batch_insert([(0, -1), (20, -2)])
    assert h10.item == 10
    assert flat.index_of(h10) == flat.leaves().index(h10)
    flat.delete(h10)
    with pytest.raises(UnknownNodeError):
        flat.index_of(h10)
    with pytest.raises(UnknownNodeError):
        flat.delete(h10)


def test_flat_slab_recycles_slots():
    flat = RBSTS(range(64), seed=7, backend="flat")
    baseline = flat.slab_size
    rnd = random.Random(7)
    for _ in range(12):
        n = flat.n_leaves
        idxs = sorted(rnd.sample(range(n), 4))
        flat.batch_delete([flat.leaf_at(i) for i in idxs])
        flat.batch_insert(
            sorted({rnd.randint(0, flat.n_leaves): 9 for _ in range(4)}.items())
        )
    # Churn must be absorbed by the free-list, not unbounded slab growth.
    assert flat.slab_size <= baseline + 2 * 64
    flat.check_invariants()


# ---------------------------------------------------------------------------
# list-prefix and summaries ride the same contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_listprefix_differential(seed):
    m = sum_monoid(INTEGER)
    rnd = random.Random(31 * seed + 1)
    vals = [rnd.randint(-50, 50) for _ in range(rnd.randint(4, 120))]
    ref = IncrementalListPrefix(m, vals, seed=seed)
    flat = IncrementalListPrefix(m, vals, seed=seed, backend="flat")
    for _ in range(5):
        n = len(ref)
        idxs = sorted(rnd.sample(range(n), rnd.randint(1, min(12, n))))
        rh = [ref.handle_at(i) for i in idxs]
        fh = [flat.handle_at(i) for i in idxs]
        assert ref.batch_prefix(rh) == flat.batch_prefix(fh)
        assert ref.prefix(rh[0]) == flat.prefix(fh[0])
        i, j = (sorted(rnd.sample(range(n), 2)) if n > 1 else (0, 0))
        assert ref.range_fold(ref.handle_at(i), ref.handle_at(j)) == flat.range_fold(
            flat.handle_at(i), flat.handle_at(j)
        )
        assert ref.total() == flat.total()
        reqs = sorted({rnd.randint(0, n): rnd.randint(-9, 9) for _ in range(3)}.items())
        ref.batch_insert(reqs)
        flat.batch_insert(reqs)
        assert ref.values() == flat.values()
    # Oracle: prefix over all handles is the running sum.
    assert flat.batch_prefix(flat.handles()) == list(
        itertools.accumulate(flat.values())
    )

"""SlabColumn storage semantics and journaled rollback over slabs.

The parallel backend swaps the flat backends' Python-list columns for
:class:`SlabColumn` (shared-memory int64/float64 arrays with a boxing
codec).  Two contracts are pinned here:

* **list-protocol equivalence** — every operation the flat cores
  perform on a list column (append/extend/``+=``/get/set/slice get/
  ``del col[n:]``/len/iter/``==``) behaves identically on a slab
  column, including for ``None`` and ints beyond the ``|v| <= 2**62``
  storable range (boxed through sentinels, read back exactly);
* **journal transparency** — :class:`repro.transactions.FlatJournal`
  needs zero slab-specific code: its tail-truncate + per-slot
  pre-image rollback restores slab bytes in place, so a transaction
  on a ``backend="parallel"`` structure rolls back bit-for-bit
  (the claim cited by the :mod:`repro.transactions` docstring).
"""

from __future__ import annotations

import gc
import random

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import PositionError
from repro.listprefix.structure import IncrementalListPrefix
from repro.perf.parallel import (
    BOXED_SENTINEL,
    NONE_SENTINEL,
    STORE_MAX,
    SlabColumn,
    live_segments,
    parallel_available,
    shutdown_pools,
)
from repro.testing.oracles import shape_signature

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="shared_memory/numpy unavailable"
)


def teardown_module(module):
    shutdown_pools()


# ---------------------------------------------------------------------------
# SlabColumn: list-protocol equivalence
# ---------------------------------------------------------------------------


def _mirror_ops(col, ref):
    """Apply one scripted op sequence to both containers."""
    rng = random.Random(1234)
    for step in range(200):
        roll = rng.random()
        if roll < 0.35 or not ref:
            v = rng.choice([None, rng.randint(-50, 50), rng.randint(-50, 50)])
            col.append(v)
            ref.append(v)
        elif roll < 0.55:
            vs = [rng.randint(-9, 9) for _ in range(rng.randint(0, 12))]
            col.extend(vs)
            ref.extend(vs)
        elif roll < 0.8:
            i = rng.randrange(len(ref))
            v = rng.choice([None, rng.randint(-99, 99)])
            col[i] = v
            ref[i] = v
        else:
            k = rng.randint(0, len(ref))
            del col[k:]
            del ref[k:]
    return col, ref


def test_list_protocol_matches_python_list():
    col, ref = _mirror_ops(SlabColumn("int64"), [])
    assert len(col) == len(ref)
    assert list(col) == ref
    assert col == ref  # __eq__ against a plain list
    if ref:
        assert col[0] == ref[0] and col[-1] == ref[-1]
        assert col[1:7] == ref[1:7]
    col.release()


def test_iadd_matches_list_semantics():
    col = SlabColumn("int64")
    ref: list = []
    col += [1, 2]  # short tuple path
    ref += [1, 2]
    col += list(range(40))  # bulk extend path
    ref += list(range(40))
    assert col == ref
    col.release()


def test_none_round_trips_through_sentinel():
    col = SlabColumn.from_list([5, None, -5])
    assert list(col) == [5, None, -5]
    assert int(col.data[1]) == NONE_SENTINEL
    # None is a sentinel, not a boxed value: no dict entry.
    assert not col.has_boxed
    col[0] = None
    assert col[0] is None
    col.release()


def test_oversized_ints_are_boxed_exactly():
    big = (1 << 200) + 12345
    col = SlabColumn.from_list([1, big, -big, 2])
    assert col.has_boxed
    assert int(col.data[1]) == BOXED_SENTINEL
    assert col[1] == big and col[2] == -big  # exact, not float-rounded
    assert list(col) == [1, big, -big, 2]
    # Overwriting with a storable int unboxes the cell.
    col[1] = 7
    assert col[1] == 7
    assert int(col.data[1]) != BOXED_SENTINEL
    # Boundary: |v| == STORE_MAX stays raw, one past gets boxed.
    col.append(STORE_MAX)
    col.append(STORE_MAX + 1)
    assert int(col.data[4]) == STORE_MAX
    assert int(col.data[5]) == BOXED_SENTINEL
    assert col[5] == STORE_MAX + 1
    col.release()


def test_tail_truncation_drops_boxed_entries():
    big = 1 << 100
    col = SlabColumn.from_list([0, big, 2, big, 4])
    del col[2:]
    assert list(col) == [0, big]
    # The boxed entry past the cut is gone; re-growing the column must
    # not resurrect it.
    col.extend([9, 9, 9])
    assert list(col) == [0, big, 9, 9, 9]
    with pytest.raises(TypeError):
        del col[0]  # only tail truncation is part of the protocol
    with pytest.raises(TypeError):
        del col[0:2]
    col.release()


def test_bulk_extend_falls_back_on_unstorable_values():
    vals = list(range(20)) + [None, 1 << 80] + list(range(20))
    col = SlabColumn("int64")
    col.extend(vals)  # mixed: bulk conversion fails, scalar codec runs
    assert list(col) == vals
    col.release()


def test_index_errors_are_position_errors():
    col = SlabColumn.from_list([1, 2, 3])
    with pytest.raises(PositionError):
        col[3]
    with pytest.raises(PositionError):
        col[-4] = 0
    assert col[-1] == 3  # negative indexing still works
    col.release()


def test_growth_releases_the_old_segment():
    gc.collect()
    before = set(live_segments())
    col = SlabColumn("int64", capacity=64)
    col.extend(range(500))  # forces at least one grow/copy cycle
    assert list(col) == list(range(500))
    # Exactly one live segment per column: grown-out slabs are unlinked
    # eagerly, not left for the GC.
    assert len(set(live_segments()) - before) == 1
    col.release()
    assert set(live_segments()) == before


def test_float_column_uses_nan_for_none():
    col = SlabColumn("float64")
    col.extend([1.5, None, -2.25] + [float(i) for i in range(10)])
    assert col[0] == 1.5 and col[1] is None and col[2] == -2.25
    assert col.has_boxed  # NaN present: vector passes must guard
    col.release()


# ---------------------------------------------------------------------------
# FlatJournal over a slab-backed tree: rollback is bit-for-bit
# ---------------------------------------------------------------------------


def _snapshot(lp):
    return (
        lp.values(),
        lp.total(),
        lp.rng_state(),
        shape_signature(lp.tree),
    )


def test_journal_rollback_restores_slab_state():
    rng = random.Random(31)
    vals = [rng.choice([None, rng.randint(-30, 30), 1 << 90]) or 0 for _ in range(200)]
    lp = IncrementalListPrefix(
        sum_monoid(INTEGER), vals, seed=6, backend="parallel", workers=2
    )
    try:
        pre = _snapshot(lp)
        journal = lp.tree._txn_begin()
        lp.batch_insert([(i * 11 % (len(lp) + 1), 1000 + i) for i in range(20)])
        lp.batch_set([(lp.handle_at(i * 7 % len(lp)), -i) for i in range(15)])
        lp.batch_delete([lp.handle_at(i) for i in sorted({i * 13 % (len(lp) - 1) for i in range(10)})])
        assert _snapshot(lp) != pre  # the batch really changed state
        lp.tree._txn_rollback(journal)
        lp.check_invariants()
        assert _snapshot(lp) == pre
        # The rolled-back structure keeps answering correctly.
        assert lp.total() == sum(vals)
    finally:
        lp.tree.close()


def test_journal_commit_keeps_slab_state():
    vals = list(range(100))
    lp = IncrementalListPrefix(
        sum_monoid(INTEGER), vals, seed=6, backend="parallel", workers=2
    )
    try:
        journal = lp.tree._txn_begin()
        lp.batch_set([(lp.handle_at(0), 999)])
        lp.tree._txn_commit(journal)
        lp.check_invariants()
        assert lp.total() == sum(vals) - 0 + 999
        assert lp.values()[0] == 999
    finally:
        lp.tree.close()


def test_journal_rollback_matches_flat_twin():
    """After an aborted transaction, the parallel structure is still in
    lockstep with a flat twin that never ran the transaction at all —
    rollback cannot leave any RNG or shape skew behind."""
    vals = [(-1) ** i * i for i in range(150)]
    monoid = sum_monoid(INTEGER)
    flat = IncrementalListPrefix(monoid, vals, seed=8, backend="flat")
    par = IncrementalListPrefix(
        monoid, vals, seed=8, backend="parallel", workers=2
    )
    try:
        journal = par.tree._txn_begin()
        par.batch_insert([(3, 77), (9, -77)])
        par.tree._txn_rollback(journal)
        # Post-rollback, both twins receive the same op stream.
        for lp in (flat, par):
            lp.batch_insert([(5, 11), (50, -11)])
            lp.batch_set([(lp.handle_at(2), 42)])
        assert par.values() == flat.values()
        assert par.total() == flat.total()
        assert par.rng_state() == flat.rng_state()
        assert shape_signature(par.tree) == shape_signature(flat.tree)
    finally:
        par.tree.close()

"""Satellite: the interned shortcut-depth schedule cache.

``shortcut_target_depths`` is a pure function of ``(depth, ratio)``;
the cache must be a transparent memoisation — hits return the *same*
interned tuple with the same contents the uncached kernel computes.
"""

from __future__ import annotations

import pytest

from repro.splitting.shortcuts import (
    DEFAULT_RATIO,
    _compute_target_depths,
    clear_schedule_cache,
    schedule_cache_stats,
    shortcut_target_depths,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_schedule_cache()
    yield
    clear_schedule_cache()


def test_cache_hits_do_not_change_targets():
    depths = [1, 2, 3, 5, 17, 100, 999, 4096]
    first = {d: shortcut_target_depths(d) for d in depths}
    stats0 = schedule_cache_stats()
    assert stats0["misses"] >= len(depths)
    for d in depths:
        again = shortcut_target_depths(d)
        # Same interned object, same contents as the raw kernel.
        assert again is first[d]
        assert list(again) == list(_compute_target_depths(d, DEFAULT_RATIO))
    stats1 = schedule_cache_stats()
    assert stats1["hits"] >= stats0["hits"] + len(depths)
    assert stats1["misses"] == stats0["misses"]


def test_cache_keys_include_ratio():
    a = shortcut_target_depths(500, 2 / 3)
    b = shortcut_target_depths(500, 1 / 2)
    assert a != b
    assert schedule_cache_stats()["size"] >= 2


def test_cache_results_are_immutable_tuples():
    t = shortcut_target_depths(123)
    assert isinstance(t, tuple)
    with pytest.raises(TypeError):
        t[0] = 99  # type: ignore[index]


def test_clear_resets_counters():
    shortcut_target_depths(77)
    shortcut_target_depths(77)
    clear_schedule_cache()
    stats = schedule_cache_stats()
    assert stats == {"hits": 0, "misses": 0, "size": 0}

"""Differential harness: FlatContraction pinned op-for-op against the
reference RakeTrace.

The flat contraction backend's contract (see
``src/repro/perf/flat_contraction.py``) promises the *same replay
semantics* as :func:`~repro.contraction.rake_tree.build_trace` — values,
rounds, wound sizes, fresh-node counts, removal/death records, tracker
charges and RNG consumption all bit-identical, on either kernel path.
These tests drive randomized mixed batch sequences through both
backends in lockstep and compare everything observable.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.rings import BOOLEAN, FLOAT, INTEGER, modular_ring
from repro.contraction.dynamic import DynamicTreeContraction
from repro.contraction.rake_tree import RakeTrace
from repro.errors import TreeStructureError
from repro.perf.flat_contraction import FlatContraction
from repro.perf.kernels import KERNEL_ENV
from repro.pram.frames import SpanTracker
from repro.trees.builders import random_expression_tree, random_tree
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op, mul_op

MOD97 = modular_ring(97)


def make_pair(ring, n, seed):
    """Twin engines over identically-built trees, one per backend."""
    t_ref = random_expression_tree(ring, n, seed=seed)
    t_flat = random_expression_tree(ring, n, seed=seed)
    ref = DynamicTreeContraction(t_ref, seed=seed + 1)
    flat = DynamicTreeContraction(t_flat, seed=seed + 1, backend="flat")
    return ref, flat


def assert_twins(ref, flat):
    assert flat.value() == ref.value()
    assert flat.rounds() == ref.rounds()
    assert flat.last_stats == ref.last_stats
    assert flat.rng_state() == ref.rng_state()
    ref.check_consistency()
    flat.check_consistency()


def random_ops(rnd):
    return mul_op() if rnd.random() < 0.3 else add_op()


def drive(ref, flat, rnd, steps=10):
    """A deterministic mixed batch sequence applied to both twins."""
    tree_r, tree_f = ref.tree, flat.tree
    for _ in range(steps):
        kind = rnd.choice(["grow", "prune", "setv", "setop", "query"])
        tr_r, tr_f = SpanTracker(), SpanTracker()
        if kind == "grow":
            leaves = [l.nid for l in tree_r.leaves_in_order()]
            targets = sorted(rnd.sample(leaves, min(3, len(leaves))))
            reqs = [
                (nid, random_ops(rnd), rnd.randint(-4, 4), rnd.randint(-4, 4))
                for nid in targets
            ]
            assert ref.batch_grow(reqs, tr_r) == flat.batch_grow(reqs, tr_f)
        elif kind == "prune":
            cands = [
                n.nid
                for n in tree_r.nodes_preorder()
                if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
            ]
            if not cands:
                continue
            targets = sorted(rnd.sample(cands, min(2, len(cands))))
            reqs = [(nid, rnd.randint(-4, 4)) for nid in targets]
            ref.batch_prune(reqs, tr_r)
            flat.batch_prune(reqs, tr_f)
        elif kind == "setv":
            leaves = [l.nid for l in tree_r.leaves_in_order()]
            targets = sorted(rnd.sample(leaves, min(4, len(leaves))))
            reqs = [(nid, rnd.randint(-4, 4)) for nid in targets]
            ref.batch_set_leaf_values(reqs, tr_r)
            flat.batch_set_leaf_values(reqs, tr_f)
        elif kind == "setop":
            internal = [
                n.nid for n in tree_r.nodes_preorder() if not n.is_leaf
            ]
            if not internal:
                continue
            targets = sorted(rnd.sample(internal, min(2, len(internal))))
            reqs = [(nid, random_ops(rnd)) for nid in targets]
            ref.batch_set_ops(reqs, tr_r)
            flat.batch_set_ops(reqs, tr_f)
        else:  # query
            ids = [n.nid for n in tree_r.nodes_preorder()]
            picks = sorted(rnd.sample(ids, min(6, len(ids))))
            assert ref.query_values(picks, tr_r) == flat.query_values(
                picks, tr_f
            )
        assert (tr_r.work, tr_r.span) == (tr_f.work, tr_f.span)
        assert_twins(ref, flat)


# ---------------------------------------------------------------------------
# construction + the backend switch
# ---------------------------------------------------------------------------


def test_backend_switch_dispatches():
    tree = random_expression_tree(INTEGER, 16, seed=0)
    flat = DynamicTreeContraction(tree, backend="flat")
    assert isinstance(flat.trace, FlatContraction)
    tree2 = random_expression_tree(INTEGER, 16, seed=0)
    ref = DynamicTreeContraction(tree2)
    assert isinstance(ref.trace, RakeTrace)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("n", [2, 3, 7, 64, 257])
def test_same_seed_same_contraction(n, seed):
    ref, flat = make_pair(INTEGER, n, seed)
    assert_twins(ref, flat)
    assert flat.value() == flat.tree.evaluate()
    assert flat.trace.size() == ref.trace.size()


def test_single_leaf_early_path():
    """The single-node tree mirrors the reference early return: zero
    rounds, the value read straight off the base row."""
    t_ref, t_flat = ExprTree(INTEGER, root_value=11), ExprTree(
        INTEGER, root_value=11
    )
    ref = DynamicTreeContraction(t_ref)
    flat = DynamicTreeContraction(t_flat, backend="flat")
    assert flat.value() == 11
    assert (flat.rounds(), ref.rounds()) == (0, 0)
    ref.batch_grow([(t_ref.root.nid, add_op(), 1, 2)])
    flat.batch_grow([(t_flat.root.nid, add_op(), 1, 2)])
    assert flat.value() == 3
    assert_twins(ref, flat)


# ---------------------------------------------------------------------------
# the main differential mixes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("ring", [INTEGER, MOD97], ids=lambda r: r.name)
@pytest.mark.parametrize("seed", range(10))
def test_mixed_ops_differential(ring, seed):
    rnd = random.Random(0xF1A7 ^ seed)
    ref, flat = make_pair(ring, rnd.randint(4, 90), seed)
    drive(ref, flat, rnd, steps=10)


@pytest.mark.parametrize("seed", range(4))
def test_float_ring_bitwise_parity(seed):
    """Float labels: both backends apply the identical IEEE-754
    expression shapes, so even the inexact ring agrees exactly."""
    rnd = random.Random(0x0F10A7 ^ seed)
    t_ref = random_tree(
        FLOAT, 40, random.Random(seed),
        values=lambda r: round(r.uniform(-2.0, 2.0), 3),
    )
    t_flat = random_tree(
        FLOAT, 40, random.Random(seed),
        values=lambda r: round(r.uniform(-2.0, 2.0), 3),
    )
    ref = DynamicTreeContraction(t_ref, seed=seed)
    flat = DynamicTreeContraction(t_flat, seed=seed, backend="flat")
    assert_twins(ref, flat)
    for _ in range(6):
        leaves = [l.nid for l in t_ref.leaves_in_order()]
        targets = sorted(rnd.sample(leaves, 3))
        reqs = [(nid, round(rnd.uniform(-2.0, 2.0), 3)) for nid in targets]
        ref.batch_set_leaf_values(reqs)
        flat.batch_set_leaf_values(reqs)
        assert_twins(ref, flat)


def test_boolean_ring_forces_python_kernels(monkeypatch):
    """Non-numeric rings take the Python kernels in every mode — the
    fallback is silent and the answers still match the oracle."""
    monkeypatch.setenv(KERNEL_ENV, "numpy")
    rnd = random.Random(7)
    tree = random_tree(
        BOOLEAN, 33, random.Random(7), values=lambda r: r.random() < 0.5
    )
    flat = DynamicTreeContraction(tree, seed=1, backend="flat")
    assert flat.value() == tree.evaluate()
    leaves = [l.nid for l in tree.leaves_in_order()]
    flat.batch_set_leaf_values(
        [(nid, rnd.random() < 0.5) for nid in sorted(rnd.sample(leaves, 5))]
    )
    assert flat.value() == tree.evaluate()
    flat.check_consistency()


# ---------------------------------------------------------------------------
# kernel-path equivalence: REPRO_KERNELS must not change any output
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "ring", [INTEGER, FLOAT, MOD97], ids=lambda r: r.name
)
def test_kernel_modes_bit_identical(ring, monkeypatch):
    def transcript(mode):
        monkeypatch.setenv(KERNEL_ENV, mode)
        rnd = random.Random(0xBEEF)
        tree = random_expression_tree(ring, 70, seed=5)
        d = DynamicTreeContraction(tree, seed=6, backend="flat")
        out = [d.value(), d.rounds(), dict(d.last_stats)]
        for _ in range(8):
            leaves = [l.nid for l in tree.leaves_in_order()]
            targets = sorted(rnd.sample(leaves, 4))
            d.batch_set_leaf_values(
                [(nid, rnd.randint(-4, 4)) for nid in targets]
            )
            out.append((d.value(), dict(d.last_stats)))
            grow = sorted(rnd.sample(leaves, 2))
            d.batch_grow(
                [(nid, random_ops(rnd), 1, rnd.randint(-3, 3)) for nid in grow]
            )
            ids = [n.nid for n in tree.nodes_preorder()]
            out.append(d.query_values(sorted(rnd.sample(ids, 5))))
            out.append((d.value(), dict(d.last_stats)))
        d.check_consistency()
        return out

    assert transcript("python") == transcript("numpy")


# ---------------------------------------------------------------------------
# protocol surfaces: removal / death records
# ---------------------------------------------------------------------------


def test_removal_and_death_records_match_reference():
    ref, flat = make_pair(INTEGER, 48, 3)
    m = ref.tree._next_id
    for nid in range(m + 2):
        assert flat.trace.removal_kind(nid) == ref.trace.removal_kind(nid)
        r_rec = ref.trace.death_record(nid)
        f_rec = flat.trace.death_record(nid)
        if r_rec is None:
            assert f_rec is None
        else:
            # Same tag, payload label, survivor, and child positions.
            assert f_rec == r_rec
    # The lazy reference-shaped removal map exposes the same keys/kinds.
    assert {k: v[0] for k, v in flat.trace.removal.items()} == {
        k: v[0] for k, v in ref.trace.removal.items()
    }


def test_set_op_on_leaf_rejected_flat():
    tree = random_expression_tree(INTEGER, 12, seed=4)
    flat = DynamicTreeContraction(tree, backend="flat")
    leaf = tree.leaves_in_order()[0]
    with pytest.raises(TreeStructureError):
        flat.batch_set_ops([(leaf.nid, add_op())])


def test_query_values_match_subtree_oracle_flat():
    tree = random_expression_tree(INTEGER, 150, seed=6)
    flat = DynamicTreeContraction(tree, seed=7, backend="flat")
    rng = random.Random(6)
    ids = rng.sample([n.nid for n in tree.nodes_preorder()], 30)
    for nid, v in zip(ids, flat.query_values(ids)):
        assert v == tree.evaluate(at=nid)


# ---------------------------------------------------------------------------
# slab hygiene: churn must not grow the slab without bound
# ---------------------------------------------------------------------------


def test_slab_stays_bounded_under_churn():
    from repro.perf.flat_contraction import _GC_FACTOR

    rnd = random.Random(9)
    tree = random_expression_tree(INTEGER, 48, seed=9)
    flat = DynamicTreeContraction(tree, seed=10, backend="flat")
    for step in range(40):
        leaves = [l.nid for l in tree.leaves_in_order()]
        grow = sorted(rnd.sample(leaves, 3))
        flat.batch_grow(
            [(nid, random_ops(rnd), 1, 2) for nid in grow]
        )
        cands = [
            n.nid
            for n in tree.nodes_preorder()
            if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
        ]
        prune = sorted(rnd.sample(cands, min(3, len(cands))))
        flat.batch_prune([(nid, rnd.randint(-4, 4)) for nid in prune])
        assert flat.value() == tree.evaluate()
        trace = flat.trace
        in_use = len(trace._kind) - len(trace._free)
        assert in_use <= _GC_FACTOR * max(64, tree._next_id)
    flat.check_consistency()

"""Determinism stress: the parallel backend's answers must be a pure
function of the workload — independent of chunk boundaries, worker
count, offload policy, and run-to-run scheduling.

The engine's ``chunk_jitter`` knob perturbs how each round's active
range is partitioned (the only degree of freedom the pool has: chunks
are contiguous, disjoint and exhaustive for *any* partition), so
replaying one seeded workload under different jitter values and worker
counts must converge to bit-identical final state.  Five repeats of
the same configuration guard against residual nondeterminism (shared
state across pool reuse, stale scratch slabs, attach caching).
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER, modular_ring
from repro.contraction.dynamic import DynamicTreeContraction
from repro.listprefix.structure import IncrementalListPrefix
from repro.perf.parallel import parallel_available, shutdown_pools
from repro.testing.oracles import shape_signature
from repro.trees.builders import random_tree
from repro.trees.nodes import add_op, mul_op

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="shared_memory/numpy unavailable"
)

_P = 65537


def teardown_module(module):
    shutdown_pools()


def _list_state(workers, jitter, force):
    """One full seeded list workload; returns the complete final state."""
    monoid = sum_monoid(INTEGER)
    rng = random.Random(4242)
    vals = [rng.randint(-99, 99) for _ in range(800)]
    lp = IncrementalListPrefix(
        monoid, vals, seed=21, backend="parallel", workers=workers
    )
    lp.tree.engine.chunk_jitter = jitter
    if force:
        lp.tree.engine.force_offload = True
    try:
        answers = []
        for rnd in range(4):
            n = len(lp)
            lp.batch_insert([((i * 13 + rnd) % (n + 1), rnd - i) for i in range(24)])
            n = len(lp)
            lp.batch_set([(lp.handle_at((i * 7) % n), i - rnd) for i in range(16)])
            idxs = sorted({(i * 5 + rnd) % n for i in range(300)})
            answers.append(lp.batch_prefix([lp.handle_at(i) for i in idxs]))
            lp.batch_delete([lp.handle_at(i) for i in sorted({(i * 3) % (len(lp) - 1) for i in range(12)})])
        return (
            answers,
            lp.values(),
            lp.total(),
            lp.rng_state(),
            shape_signature(lp.tree),
        )
    finally:
        lp.tree.close()


def test_list_state_invariant_under_chunking():
    """5 replays spanning worker counts, jitter values and forced
    offload all land on the identical final state."""
    base = _list_state(workers=2, jitter=0, force=False)
    for workers, jitter, force in (
        (2, 0, False),  # exact repeat: run-to-run determinism
        (2, 1, True),
        (2, 2, True),
        (1, 0, True),
        (4, 1, False),
    ):
        state = _list_state(workers=workers, jitter=jitter, force=force)
        assert state == base, (
            f"final state depends on chunking (workers={workers}, "
            f"jitter={jitter}, force_offload={force})"
        )


def _contraction_values(workers, jitter, force):
    rng = random.Random(99)
    tree = random_tree(
        modular_ring(_P),
        150,
        rng,
        values=lambda r: r.randrange(_P),
        ops=lambda r: mul_op() if r.random() < 0.3 else add_op(),
    )
    engine = DynamicTreeContraction(
        tree, seed=7, backend="parallel", workers=workers
    )
    engine.trace.engine.chunk_jitter = jitter
    if force:
        engine.trace.engine.force_offload = True
    try:
        out = []
        leaves = sorted(l.nid for l in tree.leaves_in_order())
        for rnd in range(5):
            ups = [(nid, (nid * 17 + rnd) % _P) for nid in leaves]
            engine.batch_set_leaf_values(ups)
            out.append(engine.value())
        return out, engine.rounds(), engine.pt.rng_state()
    finally:
        engine.trace.close()
        engine.pt.close()


def test_contraction_values_invariant_under_chunking():
    base = _contraction_values(workers=2, jitter=0, force=False)
    for workers, jitter, force in (
        (2, 0, False),
        (2, 1, True),
        (2, 2, True),
        (4, 2, True),
    ):
        got = _contraction_values(workers, jitter, force)
        assert got == base, (
            f"contraction values depend on chunking (workers={workers}, "
            f"jitter={jitter}, force_offload={force})"
        )

"""Shared-memory and worker-pool lifecycle: crash recovery, segment
hygiene, and the resilience-ladder demotion story.

* a worker hard-killed mid-round (``os._exit``, the process-level
  ``dead-processor`` fault of PR 5) must not change any answer — the
  engine recomputes the lost chunk inline from the intact source
  buffers and retires the worker;
* ``on_death="raise"`` surfaces :class:`DeadWorkerError` instead, and
  the resilience ladder treats it as recoverable: a ``parallel`` rung
  that keeps dying demotes to ``flat`` and the session completes;
* every named SharedMemory segment this process creates must be
  unlinked by ``close()`` — including when the workload dies by
  exception — so repeated construct/destroy cycles cannot leak
  ``/dev/shm`` (checked via the ``live_segments`` registry).

Kill-based tests assume POSIX process semantics and are skipped on
Windows; everything runs under the ``spawn`` start method, the only
one that behaves identically across Linux/macOS/Windows.
"""

from __future__ import annotations

import gc
import random
import sys
from itertools import accumulate

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import RetryExhaustedError
from repro.listprefix.structure import IncrementalListPrefix
from repro.perf.parallel import (
    DeadWorkerError,
    ParallelEngine,
    get_pool,
    live_segments,
    parallel_available,
    shutdown_pools,
)
from repro.resilience.executor import ResiliencePolicy, ResilientListSession

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="shared_memory/numpy unavailable"
)

_posix_kill = pytest.mark.skipif(
    sys.platform.startswith("win"),
    reason="worker kill semantics (os._exit over a pipe) are POSIX-shaped",
)


def teardown_module(module):
    shutdown_pools()


def _values(n, seed=5):
    rng = random.Random(seed)
    return [rng.randint(-40, 40) for _ in range(n)]


# ---------------------------------------------------------------------------
# dead workers
# ---------------------------------------------------------------------------


@_posix_kill
def test_worker_crash_mid_round_is_recovered_inline():
    vals = _values(600)
    expect = list(accumulate(vals))
    engine = ParallelEngine(INTEGER, workers=2, force_offload=True)
    try:
        assert engine.prefix_values(vals) == expect  # warm pool + slabs
        pool = engine.pool
        alive = pool.alive_workers
        assert len(alive) == 2
        before = pool.deaths
        pool.terminate_worker(alive[0])
        # The dead worker's chunks are recomputed inline at the commit
        # barrier; the answer cannot change.
        assert engine.prefix_values(vals) == expect
        assert engine.stats["recovered_chunks"] >= 1
        assert pool.deaths > before
        # The next round respawns the dead slot and runs clean.
        assert engine.prefix_values(vals) == expect
        assert len(pool.alive_workers) == 2
    finally:
        engine.close()


@_posix_kill
def test_on_death_raise_surfaces_dead_worker_error():
    vals = _values(600)
    engine = ParallelEngine(
        INTEGER, workers=2, force_offload=True, on_death="raise"
    )
    try:
        assert engine.prefix_values(vals) == list(accumulate(vals))
        pool = engine.pool
        pool.terminate_worker(pool.alive_workers[0])
        with pytest.raises(DeadWorkerError):
            engine.prefix_values(vals)
        # The engine stays usable after the error: the pool heals.
        assert engine.prefix_values(vals) == list(accumulate(vals))
    finally:
        engine.close()


def test_ladder_demotes_parallel_to_flat_on_dead_workers():
    """A parallel rung whose pool keeps dying falls down the PR 5
    ladder: retries exhaust, one DegradationEvent is recorded, and the
    session completes the workload on ``flat`` with correct answers."""
    vals = _values(300)
    session = ResilientListSession(
        sum_monoid(INTEGER),
        vals,
        seed=3,
        policy=ResiliencePolicy(
            max_retries=1,
            ladder=("parallel", "flat", "reference", "sequential"),
            detect="light",
        ),
    )
    assert session.rung == "parallel"
    checksum = session.total()

    def always_dead(*_args):
        raise DeadWorkerError("no workers survive (injected)")

    # Inject the death into the supervised prefix path of the *current*
    # (parallel) structure; the rebuilt flat structure is untouched.
    session._structure.prefix = always_dead
    got = session.prefix(len(vals) - 1)
    assert got == sum(vals) == checksum
    assert session.rung == "flat"
    assert [(e.from_rung, e.to_rung) for e in session.events] == [
        ("parallel", "flat")
    ]
    # Post-demotion operations run clean on the flat rung.
    session.batch_set([(0, 1000)])
    assert session.total() == sum(vals) - vals[0] + 1000


def test_ladder_rejects_unknown_rung_but_accepts_parallel():
    ResiliencePolicy(ladder=("parallel", "flat"))  # must not raise
    from repro.errors import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        ResiliencePolicy(ladder=("parallel", "threads"))


def test_retry_exhaustion_at_ladder_bottom_still_raises():
    session = ResilientListSession(
        sum_monoid(INTEGER),
        _values(50),
        seed=3,
        policy=ResiliencePolicy(
            max_retries=0, ladder=("parallel",), detect="light"
        ),
    )

    def always_dead(*_args):
        raise DeadWorkerError("injected")

    # DeadWorkerError is RECOVERABLE, so with zero retries and a
    # single-rung ladder the supervisor must surface RetryExhaustedError.
    session._structure.prefix = always_dead
    with pytest.raises(RetryExhaustedError):
        session.prefix(10)


# ---------------------------------------------------------------------------
# shared-memory segment hygiene
# ---------------------------------------------------------------------------


def test_close_unlinks_every_segment():
    gc.collect()  # flush finalizers of earlier tests' structures
    before = set(live_segments())
    lp = IncrementalListPrefix(
        sum_monoid(INTEGER), _values(400), seed=1, backend="parallel", workers=2
    )
    hs = [lp.handle_at(i) for i in range(0, 400, 2)]
    lp.batch_prefix(hs)
    assert set(live_segments()) >= before  # summary slab (+ scratch) live
    assert len(live_segments()) > len(before)
    lp.tree.close()
    gc.collect()
    assert set(live_segments()) == before, (
        f"leaked segments: {sorted(set(live_segments()) - before)}"
    )


def test_exception_path_does_not_leak_segments():
    gc.collect()
    before = set(live_segments())

    def workload():
        lp = IncrementalListPrefix(
            sum_monoid(INTEGER),
            _values(300),
            seed=2,
            backend="parallel",
            workers=2,
        )
        try:
            lp.batch_prefix([lp.handle_at(i) for i in range(0, 300, 3)])
            raise RuntimeError("workload dies mid-flight")
        finally:
            lp.tree.close()

    with pytest.raises(RuntimeError):
        workload()
    gc.collect()
    assert set(live_segments()) == before


def test_gc_finalizer_is_the_safety_net():
    """Dropping a slab-backed structure without close() must still
    unlink its segments once the GC runs the finalizers."""
    gc.collect()
    before = set(live_segments())
    lp = IncrementalListPrefix(
        sum_monoid(INTEGER), _values(300), seed=4, backend="parallel", workers=2
    )
    lp.batch_prefix([lp.handle_at(i) for i in range(0, 300, 3)])
    engine = lp.tree.engine
    del lp
    gc.collect()
    engine.close()  # scratch slabs are owned by the (shared) engine
    gc.collect()
    assert set(live_segments()) == before


def test_pool_registry_is_shared_per_worker_count():
    a = get_pool(2)
    b = get_pool(2)
    c = get_pool(3)
    assert a is b
    assert a is not c

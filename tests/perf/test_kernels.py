"""Kernel parity: the NumPy per-level kernels pinned bit-for-bit
against the scalar ground truth (``PythonKernels``).

The flat contraction backend's drop-in contract requires that the
answer never depends on which kernel set is selected — so every test
here compares the two paths with plain ``==`` (no tolerances), across
the registered numeric rings, the exactness guards, and the
environment-variable dispatch.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.rings import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    Ring,
    modular_ring,
    tropical_semiring,
)
from repro.contraction.labels import compress_label
from repro.errors import InvalidParameterError
from repro.perf.kernels import (
    INT64_SAFE_MAGNITUDE,
    KERNEL_ENV,
    MAX_VECTOR_MODULUS,
    SCALAR_CUTOFF,
    NumpyKernels,
    PythonKernels,
    kernel_mode,
    prefix_compose,
    select_kernels,
    vector_ring_for,
)

MOD97 = modular_ring(97)


def columns(ring, n, seed):
    """Random operand columns drawn from the ring's natural domain."""
    rnd = random.Random(seed)
    if ring.name == "Z":
        draw = lambda: rnd.randint(-50, 50)  # noqa: E731
    elif ring.name == "R":
        draw = lambda: round(rnd.uniform(-4.0, 4.0), 3)  # noqa: E731
    else:  # Z/p
        p = int(ring.name[2:])
        draw = lambda: rnd.randrange(p)  # noqa: E731
    return [[draw() for _ in range(n)] for _ in range(4)]


def numpy_kernels(ring):
    vec = vector_ring_for(ring)
    assert vec is not None
    return NumpyKernels(ring, vec)


# ---------------------------------------------------------------------------
# the scalar path mirrors labels.py exactly
# ---------------------------------------------------------------------------


def test_python_kernels_match_label_rules():
    k = PythonKernels(INTEGER)
    assert k.rake_add([2], [3], [4]) == ([3], [3 * 2 + 4])
    assert k.rake_add([2], [3], [4], [5]) == ([3], [3 * (2 + 5) + 4])
    assert k.rake_mul([2], [3], [4]) == ([3 * 2], [4])
    assert k.compress([2], [3], [5], [7]) == ([2 * 5], [2 * 7 + 3])
    assert not k.vectorized


# ---------------------------------------------------------------------------
# vector path == scalar path, elementwise, on every registered ring
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("ring", [INTEGER, FLOAT, MOD97], ids=lambda r: r.name)
@pytest.mark.parametrize("seed", range(5))
def test_numpy_matches_python_on_large_levels(ring, seed):
    n = SCALAR_CUTOFF + 16  # comfortably past the tiny-level cutoff
    a, b, c, d = columns(ring, n, seed)
    py, np_ = PythonKernels(ring), numpy_kernels(ring)
    assert np_.vectorized
    assert np_.rake_add(b, c, d) == py.rake_add(b, c, d)
    assert np_.rake_add(b, c, d, a) == py.rake_add(b, c, d, a)
    assert np_.rake_mul(b, c, d) == py.rake_mul(b, c, d)
    assert np_.compress(a, b, c, d) == py.compress(a, b, c, d)


def test_small_levels_take_the_scalar_path():
    np_ = numpy_kernels(INTEGER)
    cols = columns(INTEGER, SCALAR_CUTOFF - 1, 3)
    assert np_._arrays(*cols) is None  # tiny level: setup > loop
    assert np_._arrays(*columns(INTEGER, SCALAR_CUTOFF, 3)) is not None
    a, b, c, d = cols
    assert np_.compress(a, b, c, d) == PythonKernels(INTEGER).compress(
        a, b, c, d
    )


@pytest.mark.parametrize(
    "spike",
    [INT64_SAFE_MAGNITUDE + 1, -(INT64_SAFE_MAGNITUDE + 1), 10**30, 2**70],
)
def test_integer_guard_falls_back_exactly(spike):
    """Any operand beyond the int64-safety bound (or unrepresentable in
    int64 at all) sends that level to the exact big-int path."""
    n = SCALAR_CUTOFF + 8
    a, b, c, d = columns(INTEGER, n, 11)
    b[n // 2] = spike
    py, np_ = PythonKernels(INTEGER), numpy_kernels(INTEGER)
    assert np_._arrays(a, b, c, d) is None
    assert np_.compress(a, b, c, d) == py.compress(a, b, c, d)
    assert np_.rake_add(b, c, d) == py.rake_add(b, c, d)


def test_guarded_level_vectorizes_at_the_boundary():
    n = SCALAR_CUTOFF + 8
    a, b, c, d = columns(INTEGER, n, 12)
    b[0] = INT64_SAFE_MAGNITUDE
    b[1] = -INT64_SAFE_MAGNITUDE
    np_ = numpy_kernels(INTEGER)
    assert np_._arrays(a, b, c, d) is not None
    assert np_.compress(a, b, c, d) == PythonKernels(INTEGER).compress(
        a, b, c, d
    )


def test_modular_outputs_are_python_ints():
    n = SCALAR_CUTOFF + 8
    a, b, c, d = columns(MOD97, n, 13)
    na, nb = numpy_kernels(MOD97).compress(a, b, c, d)
    assert all(type(x) is int for x in na + nb)
    assert (na, nb) == PythonKernels(MOD97).compress(a, b, c, d)


# ---------------------------------------------------------------------------
# the vector-ring registry
# ---------------------------------------------------------------------------


def test_vector_ring_registry():
    vz = vector_ring_for(INTEGER)
    assert vz is not None and vz.guard == INT64_SAFE_MAGNITUDE
    vr = vector_ring_for(FLOAT)
    assert vr is not None and vr.modulus is None and vr.guard is None
    vp = vector_ring_for(MOD97)
    assert vp is not None and vp.modulus == 97
    # Non-numeric / inexact rings must stay scalar.
    assert vector_ring_for(BOOLEAN) is None
    assert vector_ring_for(tropical_semiring()) is None
    assert vector_ring_for(modular_ring(MAX_VECTOR_MODULUS)) is None
    weird = Ring("Z/notanumber", 0, 1, lambda a, b: a, lambda a, b: b)
    assert vector_ring_for(weird) is None


# ---------------------------------------------------------------------------
# REPRO_KERNELS dispatch
# ---------------------------------------------------------------------------


def test_kernel_mode_env(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    assert kernel_mode() == "auto"
    monkeypatch.setenv(KERNEL_ENV, "")
    assert kernel_mode() == "auto"
    monkeypatch.setenv(KERNEL_ENV, "  NumPy ")
    assert kernel_mode() == "numpy"
    monkeypatch.setenv(KERNEL_ENV, "python")
    assert kernel_mode() == "python"
    monkeypatch.setenv(KERNEL_ENV, "fortran")
    with pytest.raises(InvalidParameterError):
        kernel_mode()


def test_select_kernels_dispatch(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    assert select_kernels(INTEGER).vectorized  # numpy is baked in
    assert not select_kernels(BOOLEAN).vectorized  # no vector mapping
    monkeypatch.setenv(KERNEL_ENV, "python")
    assert not select_kernels(INTEGER).vectorized
    monkeypatch.setenv(KERNEL_ENV, "numpy")
    assert select_kernels(FLOAT).vectorized
    # Forcing numpy on a non-numeric ring is a fallback, not an error.
    assert not select_kernels(tropical_semiring()).vectorized


# ---------------------------------------------------------------------------
# the prefix phase
# ---------------------------------------------------------------------------


def fold_oracle(ring, labels):
    out, acc = [], None
    for lab in labels:
        acc = lab if acc is None else compress_label(ring, lab, acc)
        out.append(acc)
    return out


@pytest.mark.parametrize("ring", [INTEGER, MOD97, BOOLEAN], ids=lambda r: r.name)
@pytest.mark.parametrize("mode", ["python", "numpy"])
@pytest.mark.parametrize("n", [0, 1, 2, 5, SCALAR_CUTOFF + 17])
def test_prefix_compose_matches_sequential_fold(ring, mode, n, monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, mode)
    rnd = random.Random(101 * n + len(ring.name))
    if ring is BOOLEAN:
        labels = [
            (rnd.random() < 0.5, rnd.random() < 0.5) for _ in range(n)
        ]
    else:
        labels = [(rnd.randint(-3, 3), rnd.randint(-3, 3)) for _ in range(n)]
    assert prefix_compose(ring, labels) == fold_oracle(ring, labels)


@pytest.mark.parametrize("n", [1, 7, SCALAR_CUTOFF + 5, 200])
def test_prefix_compose_modes_identical_on_floats(n, monkeypatch):
    """Floats are inexact, so the fold oracle does not apply — but the
    two kernel sets evaluate the identical doubling bracketing, so they
    must agree bit-for-bit with each other."""
    rnd = random.Random(n)
    labels = [
        (rnd.uniform(-1.5, 1.5), rnd.uniform(-1.5, 1.5)) for _ in range(n)
    ]
    monkeypatch.setenv(KERNEL_ENV, "python")
    py = prefix_compose(FLOAT, labels)
    monkeypatch.setenv(KERNEL_ENV, "numpy")
    np_ = prefix_compose(FLOAT, labels)
    assert py == np_  # exact: identical IEEE expression per element

"""The perf-regression gate must reject malformed baselines with a
distinct exit code (3) and message — never a ``KeyError`` traceback."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


@pytest.fixture(scope="module")
def regress():
    path = os.path.join(REPO_ROOT, "benchmarks", "regress.py")
    spec = importlib.util.spec_from_file_location("regress_under_test", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def write_baseline(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(payload))
    return str(path)


GOOD_CELL = {
    "experiment": "x",
    "cell": {"n": 8, "u": 2},
    "backend": "flat",
    "simulated": {"work": 1},
    "wall_clock_s": 0.01,
}


def test_missing_cells_exits_3(regress, tmp_path, capsys):
    path = write_baseline(
        tmp_path, {"schema": "repro-perf-harness/1", "quick": False}
    )
    rc = regress.main(["--baseline", path])
    assert rc == 3
    err = capsys.readouterr().err
    assert "cells" in err and "invalid baseline" in err


def test_empty_cells_exits_3(regress, tmp_path):
    path = write_baseline(
        tmp_path,
        {"schema": "repro-perf-harness/1", "quick": False, "cells": []},
    )
    assert regress.main(["--baseline", path]) == 3


def test_cell_missing_keys_exits_3(regress, tmp_path, capsys):
    bad = {k: v for k, v in GOOD_CELL.items() if k != "wall_clock_s"}
    path = write_baseline(
        tmp_path,
        {"schema": "repro-perf-harness/1", "quick": False, "cells": [bad]},
    )
    assert regress.main(["--baseline", path]) == 3
    assert "wall_clock_s" in capsys.readouterr().err


def test_cells_wrong_type_exits_3(regress, tmp_path):
    path = write_baseline(
        tmp_path,
        {"schema": "repro-perf-harness/1", "quick": False, "cells": {"a": 1}},
    )
    assert regress.main(["--baseline", path]) == 3


def test_unreadable_baseline_still_exits_2(regress, tmp_path):
    assert regress.main(["--baseline", str(tmp_path / "nope.json")]) == 2
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    assert regress.main(["--baseline", str(garbled)]) == 2


def test_schema_mismatch_still_exits_2(regress, tmp_path):
    path = write_baseline(tmp_path, {"schema": "other/9", "cells": []})
    assert regress.main(["--baseline", path]) == 2


def test_validate_cells_accepts_good_baseline(regress):
    assert regress.validate_cells({"cells": [dict(GOOD_CELL)]}) == []

"""Differential process-pool rig: ``backend="parallel"`` pinned
bit-for-bit against ``backend="flat"`` (the PR 7 tentpole contract).

The parallel backend inherits every algorithm and the RNG stream from
the flat core — only storage (shared slabs) and execution (worker-pool
chunks) change — so for the same seed and op stream the two must agree
on *everything*: tree shapes, summaries, master-RNG state, batch
statistics, prefix answers.  These tests replay PR 2 fuzzer-generated
op sequences on both backends in lockstep at 1/2/4 workers, plus a
forced-offload pass (``REPRO_PARALLEL_OFFLOAD=force``) that pushes
every eligible round through real worker IPC regardless of size.

The contraction twin (``DynamicTreeContraction`` level batches) is
pinned the same way over value/grow/prune rounds.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER, modular_ring
from repro.contraction.dynamic import DynamicTreeContraction
from repro.listprefix.structure import IncrementalListPrefix
from repro.perf.parallel import parallel_available, shutdown_pools
from repro.testing.executor import initial_values
from repro.testing.generator import generate
from repro.testing.oracles import shape_signature
from repro.testing.ops import FUZZ_RINGS, norm_value
from repro.trees.builders import random_tree
from repro.trees.nodes import add_op, mul_op

WORKERS = (1, 2, 4)
SEQ_SEEDS = (0, 1, 2, 3)
_RAW = 1 << 16

pytestmark = pytest.mark.skipif(
    not parallel_available(), reason="shared_memory/numpy unavailable"
)


def teardown_module(module):
    shutdown_pools()


# ---------------------------------------------------------------------------
# lockstep list-scenario replay
# ---------------------------------------------------------------------------


class _Lockstep:
    """Apply one normalized op stream to N subjects simultaneously and
    compare them bit-for-bit after every step.

    Positions are normalised against a single model-length counter, so
    every subject receives *identical* requests — any divergence is a
    backend bug, not a driver artifact.
    """

    def __init__(self, seq, subjects):
        self.ring = seq.ring
        self.subjects = subjects  # name -> IncrementalListPrefix
        self.n = seq.n0

    def _nv(self, raw):
        return norm_value(self.ring, raw)

    def apply(self, op):
        kind, n = op[0], self.n
        if kind == "ins":
            pos, val = int(op[1]) % (n + 1), self._nv(op[2])
            for lp in self.subjects.values():
                lp.insert(pos, val)
            self.n += 1
        elif kind == "del":
            if n < 2:
                return
            pos = int(op[1]) % n
            for lp in self.subjects.values():
                lp.delete(lp.handle_at(pos))
            self.n -= 1
        elif kind == "bins":
            reqs = [(int(p) % (n + 1), self._nv(v)) for p, v in op[1]]
            if not reqs:
                return
            for lp in self.subjects.values():
                lp.batch_insert(list(reqs))
            self.n += len(reqs)
        elif kind == "bdel":
            if n < 2:
                return
            idxs, seen = [], set()
            for p in op[1]:
                q = int(p) % n
                if q not in seen:
                    seen.add(q)
                    idxs.append(q)
            idxs = idxs[: n - 1]
            if not idxs:
                return
            for lp in self.subjects.values():
                lp.batch_delete([lp.handle_at(i) for i in idxs])
            self.n -= len(idxs)
        elif kind == "bset":
            updates = [(int(p) % n, self._nv(v)) for p, v in op[1]]
            if not updates:
                return
            for lp in self.subjects.values():
                lp.batch_set([(lp.handle_at(i), v) for i, v in updates])
        elif kind == "prefix":
            idxs = [int(p) % n for p in op[1]]
            if not idxs:
                return
            answers = {
                name: lp.batch_prefix([lp.handle_at(i) for i in idxs])
                for name, lp in self.subjects.items()
            }
            base = answers["flat"]
            for name, got in answers.items():
                assert got == base, (
                    f"batch_prefix diverged on {name}: {got!r} != {base!r}"
                )
        elif kind == "range":
            i, j = int(op[1]) % n, int(op[2]) % n
            if i > j:
                i, j = j, i
            answers = {
                name: lp.range_fold(lp.handle_at(i), lp.handle_at(j))
                for name, lp in self.subjects.items()
            }
            base = answers["flat"]
            for name, got in answers.items():
                assert got == base, f"range_fold diverged on {name}"
        elif kind == "activate":
            return  # covered by the flat-vs-reference rig; no-op here
        else:  # pragma: no cover - generator never emits others
            raise AssertionError(f"unknown op kind {kind!r}")

    def audit(self, deep: bool) -> None:
        flat = self.subjects["flat"]
        base_rng = flat.rng_state()
        base_total = flat.total()
        base_stats = dict(flat.tree.last_batch_stats)
        base_sig = shape_signature(flat.tree) if deep else None
        for name, lp in self.subjects.items():
            if name == "flat":
                continue
            assert lp.rng_state() == base_rng, (
                f"{name}: master-RNG stream diverged from flat"
            )
            assert lp.total() == base_total, f"{name}: total() diverged"
            assert dict(lp.tree.last_batch_stats) == base_stats, (
                f"{name}: last_batch_stats diverged"
            )
            if deep:
                assert shape_signature(lp.tree) == base_sig, (
                    f"{name}: shape signature diverged from flat"
                )
                lp.check_invariants()


def _close_all(subjects):
    for name, lp in subjects.items():
        if name != "flat":
            lp.tree.close()


def _run_lockstep(seq, workers=WORKERS, audit_every=4):
    monoid = sum_monoid(FUZZ_RINGS[seq.ring])
    vals = initial_values(seq)
    subjects = {
        "flat": IncrementalListPrefix(
            monoid, vals, seed=seq.seed, backend="flat"
        )
    }
    for w in workers:
        subjects[f"parallel-w{w}"] = IncrementalListPrefix(
            monoid, vals, seed=seq.seed, backend="parallel", workers=w
        )
    step = _Lockstep(seq, subjects)
    try:
        step.audit(deep=True)
        for i, op in enumerate(seq.ops):
            step.apply(op)
            step.audit(deep=(i % audit_every == 0))
        step.audit(deep=True)
    finally:
        _close_all(subjects)


@pytest.mark.parametrize("seed", SEQ_SEEDS)
def test_fuzz_sequences_lockstep(seed):
    seq = generate("list", seed, 60)
    _run_lockstep(seq)


def test_batch_heavy_profile_lockstep():
    seq = generate("list", 11, 40, profile="batch")
    _run_lockstep(seq)


def test_forced_offload_lockstep(monkeypatch):
    """Every eligible scan goes through real worker IPC (no inline
    shortcut) and the answers still match flat bit-for-bit."""
    monkeypatch.setenv("REPRO_PARALLEL_OFFLOAD", "force")
    seq = generate("list", 5, 30)
    _run_lockstep(seq, workers=(2,), audit_every=2)


def test_large_prefix_batches_hit_the_scan():
    """Wide query batches (above the scan cutoffs) answer identically
    on flat (vectorized doubling scan) and parallel (chunked pool
    scan); the running-fold loop is the reference for both."""
    monoid = sum_monoid(INTEGER)
    rng = random.Random(77)
    vals = [rng.randint(-50, 50) for _ in range(3000)]
    flat = IncrementalListPrefix(monoid, vals, seed=9, backend="flat")
    par = IncrementalListPrefix(
        monoid, vals, seed=9, backend="parallel", workers=2
    )
    try:
        idxs = sorted(rng.sample(range(3000), 600))
        a = flat.batch_prefix([flat.handle_at(i) for i in idxs])
        b = par.batch_prefix([par.handle_at(i) for i in idxs])
        assert a == b
        # Naive oracle on a spot-check subset.
        acc, pos, naive = 0, 0, {}
        for i, v in enumerate(vals):
            acc += v
            naive[i] = acc
        assert a == [naive[i] for i in idxs]
    finally:
        par.tree.close()


# ---------------------------------------------------------------------------
# contraction twin
# ---------------------------------------------------------------------------

_P = 10007


def _expr_tree(n, seed):
    rng = random.Random(seed)
    return random_tree(
        modular_ring(_P),
        n,
        rng,
        values=lambda r: r.randrange(_P),
        ops=lambda r: mul_op() if r.random() < 0.3 else add_op(),
    )


def test_contraction_rounds_lockstep():
    """Value/grow/prune rounds on flat vs parallel: same values, same
    RNG stream, same round counts (the heal-schedule cache and the
    offloaded eval must be invisible)."""
    rng = random.Random(13)
    flat = DynamicTreeContraction(_expr_tree(96, 4), seed=2, backend="flat")
    par = DynamicTreeContraction(
        _expr_tree(96, 4), seed=2, backend="parallel", workers=2
    )
    try:
        for rnd in range(6):
            leaves = [l.nid for l in flat.tree.leaves_in_order()]
            ups = [
                (nid, (nid * 7 + rnd) % _P)
                for nid in sorted(rng.sample(leaves, len(leaves) // 2))
            ]
            assert flat.batch_set_leaf_values(ups) == par.batch_set_leaf_values(ups)
            if rnd % 2 == 0:
                grow = [
                    (nid, add_op(), 1 + rnd, 2)
                    for nid in sorted(rng.sample(leaves, 4))
                ]
                assert flat.batch_grow(grow) == par.batch_grow(grow)
            assert flat.value() == par.value()
            assert flat.rounds() == par.rounds()
            assert flat.pt.rng_state() == par.pt.rng_state()
            flat.check_consistency()
            par.check_consistency()
    finally:
        par.trace.close()
        par.pt.close()


def test_contraction_repeated_rounds_use_cached_schedule():
    """The E14 shape: identical token sets round after round — the
    cached heal schedule must keep answers equal to a fresh flat run
    on every round (cache staleness would diverge immediately)."""
    flat = DynamicTreeContraction(_expr_tree(200, 8), seed=3, backend="flat")
    par = DynamicTreeContraction(
        _expr_tree(200, 8), seed=3, backend="parallel", workers=2
    )
    try:
        leaves = sorted(l.nid for l in flat.tree.leaves_in_order())
        for rnd in range(5):
            ups = [(nid, (nid * 11 + rnd * 3) % _P) for nid in leaves]
            flat.batch_set_leaf_values(ups)
            par.batch_set_leaf_values(ups)
            assert flat.value() == par.value()
        # A structural change must invalidate the cached schedule.
        grow = [(leaves[0], mul_op(), 5, 6)]
        flat.batch_grow(grow)
        par.batch_grow(grow)
        for rnd in range(2):
            leaves2 = sorted(l.nid for l in flat.tree.leaves_in_order())
            ups = [(nid, (nid + rnd) % _P) for nid in leaves2]
            flat.batch_set_leaf_values(ups)
            par.batch_set_leaf_values(ups)
            assert flat.value() == par.value()
    finally:
        par.trace.close()
        par.pt.close()

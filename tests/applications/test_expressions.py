"""DynamicExpression facade (§5 expression evaluation)."""

import random

from repro.algebra.rings import INTEGER
from repro.applications.expressions import DynamicExpression
from repro.trees.nodes import add_op, mul_op


def test_from_random_matches_oracle():
    expr = DynamicExpression.from_random(INTEGER, 200, seed=0)
    assert expr.value() == expr.tree.evaluate()
    assert expr.n_leaves() == 200


def test_quickstart_flow():
    expr = DynamicExpression.from_random(INTEGER, 50, seed=1)
    leaf = expr.some_leaf()
    expr.batch_set_values([(leaf, 42)])
    assert expr.value() == expr.tree.evaluate()
    created = expr.batch_grow([(leaf, mul_op(), 6, 7)])
    assert expr.tree.node(created[0][0]).value == 6
    assert expr.value() == expr.tree.evaluate()


def test_subexpression_values():
    expr = DynamicExpression.from_random(INTEGER, 80, seed=2)
    ids = expr.internal_ids()[:10]
    values = expr.subexpression_values(ids)
    for nid, v in zip(ids, values):
        assert v == expr.tree.evaluate(at=nid)


def test_mixed_session():
    rng = random.Random(3)
    expr = DynamicExpression.from_random(INTEGER, 40, seed=3)
    for _ in range(25):
        action = rng.choice(["set", "op", "grow", "prune"])
        if action == "set":
            leaves = expr.leaf_ids()
            expr.batch_set_values(
                [(nid, rng.randint(-4, 4)) for nid in rng.sample(leaves, 3)]
            )
        elif action == "op":
            ids = expr.internal_ids()
            expr.batch_set_ops(
                [(rng.choice(ids), add_op() if rng.random() < 0.6 else mul_op())]
            )
        elif action == "grow":
            leaves = expr.leaf_ids()
            expr.batch_grow(
                [(nid, add_op(), 1, 2) for nid in rng.sample(leaves, 2)]
            )
        else:
            cands = [
                n.nid
                for n in expr.tree.nodes_preorder()
                if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
            ]
            if len(cands) > 1:
                expr.batch_prune([(cands[0], rng.randint(-3, 3))])
        assert expr.value() == expr.tree.evaluate()
    assert "fresh_rt_nodes" in expr.last_stats or "wound" in expr.last_stats

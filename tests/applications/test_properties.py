"""Dynamic tree properties (§5, Theorem 5.1)."""

import random

import pytest

from repro.applications.properties import DynamicTreeProperties


def oracle_subtree_size(tree, nid):
    count = 0
    stack = [tree.node(nid)]
    while stack:
        n = stack.pop()
        count += 1
        if not n.is_leaf:
            stack.extend([n.left, n.right])
    return count


def grown_props(rounds, seed=0):
    rng = random.Random(seed)
    props = DynamicTreeProperties(seed=seed)
    for _ in range(rounds):
        leaves = [l.nid for l in props.tree.leaves_in_order()]
        props.batch_grow(rng.sample(leaves, min(3, len(leaves))))
    return props, rng


def test_n_nodes_exactly_maintained():
    props, _ = grown_props(10, seed=0)
    assert props.n_nodes() == len(props.tree)


def test_subtree_sizes_and_descendants():
    props, rng = grown_props(12, seed=1)
    ids = rng.sample([n.nid for n in props.tree.nodes_preorder()], 10)
    sizes = props.batch_subtree_sizes(ids)
    desc = props.batch_num_descendants(ids)
    for nid, s, d in zip(ids, sizes, desc):
        assert s == oracle_subtree_size(props.tree, nid)
        assert d == s - 1


def test_num_ancestors_and_preorder():
    props, rng = grown_props(12, seed=2)
    ids = rng.sample([n.nid for n in props.tree.nodes_preorder()], 10)
    anc = props.batch_num_ancestors(ids)
    assert anc == [props.tree.depth_of(nid) for nid in ids]
    from repro.trees.traversal import preorder_ids

    rank = {nid: i for i, nid in enumerate(preorder_ids(props.tree))}
    assert props.batch_preorder(ids) == [rank[nid] for nid in ids]


def test_prune_keeps_everything_consistent():
    props, rng = grown_props(15, seed=3)
    for _ in range(5):
        cands = [
            n.nid
            for n in props.tree.nodes_preorder()
            if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
        ]
        props.batch_prune(rng.sample(cands, min(2, len(cands))))
        assert props.n_nodes() == len(props.tree)
        ids = rng.sample([n.nid for n in props.tree.nodes_preorder()], 5)
        assert props.batch_subtree_sizes(ids) == [
            oracle_subtree_size(props.tree, nid) for nid in ids
        ]
        assert props.batch_num_ancestors(ids) == [
            props.tree.depth_of(nid) for nid in ids
        ]


def test_prune_rejects_leaf():
    props, _ = grown_props(2, seed=4)
    leaf = props.tree.leaves_in_order()[0]
    with pytest.raises(ValueError):
        props.batch_prune([leaf.nid])


def test_is_ancestor():
    props, rng = grown_props(8, seed=5)
    tree = props.tree
    node = tree.root
    while not node.is_leaf:
        node = node.left
    assert props.is_ancestor(tree.root.nid, node.nid)
    assert not props.is_ancestor(node.nid, tree.root.nid)
    assert props.is_ancestor(node.nid, node.nid)


def test_from_shape_mirrors_topology():
    from repro.algebra.rings import INTEGER
    from repro.trees.builders import random_expression_tree

    shape = random_expression_tree(INTEGER, 20, seed=6)
    props = DynamicTreeProperties.from_shape(shape, seed=7)
    assert props.n_nodes() == len(shape)
    mapping = props.mapping_from_shape
    for theirs in shape.nodes_preorder():
        mine = mapping[theirs.nid]
        assert props.batch_subtree_sizes([mine])[0] == oracle_subtree_size(
            shape, theirs.nid
        )

"""Dynamic preorder numbering (§1.1's running example)."""

import random

from repro.algebra.rings import INTEGER
from repro.applications.preorder import DynamicPreorder
from repro.trees.builders import random_expression_tree
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op
from repro.trees.traversal import preorder_ids


def test_numbers_match_static_preorder():
    tree = random_expression_tree(INTEGER, 90, seed=0)
    pre = DynamicPreorder(tree, seed=1)
    rank = {nid: i for i, nid in enumerate(preorder_ids(tree))}
    ids = [n.nid for n in tree.nodes_preorder()]
    assert pre.batch_numbers(ids) == [rank[nid] for nid in ids]
    for nid in ids[:5]:
        assert pre.number(nid) == rank[nid]


def test_numbers_shift_after_structural_edit():
    """One grow shifts the numbers of everything to its right — the
    paper's argument for incremental (not exact) maintenance."""
    tree = random_expression_tree(INTEGER, 40, seed=1)
    pre = DynamicPreorder(tree, seed=2)
    target = tree.leaves_in_order()[5]
    l, r = tree.grow_leaf(target.nid, add_op(), 1, 1)
    pre.batch_grow([(target.nid, l, r)])
    rank = {nid: i for i, nid in enumerate(preorder_ids(tree))}
    ids = [n.nid for n in tree.nodes_preorder()]
    assert pre.batch_numbers(ids) == [rank[nid] for nid in ids]


def test_dynamic_session():
    rng = random.Random(2)
    tree = ExprTree(INTEGER, root_value=1)
    pre = DynamicPreorder(tree, seed=3)
    for _ in range(25):
        leaves = [l.nid for l in tree.leaves_in_order()]
        target = rng.choice(leaves)
        l, r = tree.grow_leaf(target, add_op(), 1, 1)
        pre.batch_grow([(target, l, r)])
    rank = {nid: i for i, nid in enumerate(preorder_ids(tree))}
    sample = rng.sample(list(rank), 10)
    assert pre.batch_numbers(sample) == [rank[nid] for nid in sample]

"""Common subexpression elimination over a dynamic expression tree."""

import random

import pytest

from repro.algebra.rings import INTEGER
from repro.applications.cse import CommonSubexpressions
from repro.errors import UnknownNodeError
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op, mul_op


def build_with_duplicates():
    """(1 + 2) * (2 + 1) — commutative duplicates."""
    t = ExprTree(INTEGER, root_value=0)
    l, r = t.grow_leaf(t.root.nid, mul_op(), 0, 0)
    t.grow_leaf(l, add_op(), 1, 2)
    t.grow_leaf(r, add_op(), 2, 1)
    return t, l, r


def test_commutative_duplicates_detected():
    t, l, r = build_with_duplicates()
    cse = CommonSubexpressions(t)
    assert cse.equivalent(l, r)
    assert r in cse.duplicates_of(l)
    classes = cse.classes()
    assert any({l, r} <= c for c in classes)


def test_distinct_expressions_not_equivalent():
    t = ExprTree(INTEGER, root_value=0)
    l, r = t.grow_leaf(t.root.nid, mul_op(), 0, 0)
    t.grow_leaf(l, add_op(), 1, 2)
    t.grow_leaf(r, add_op(), 2, 2)
    cse = CommonSubexpressions(t)
    assert not cse.equivalent(l, r)


def test_op_kind_and_const_distinguish():
    t = ExprTree(INTEGER, root_value=0)
    l, r = t.grow_leaf(t.root.nid, add_op(), 0, 0)
    t.grow_leaf(l, add_op(const=1), 3, 4)
    t.grow_leaf(r, add_op(), 3, 4)
    cse = CommonSubexpressions(t)
    assert not cse.equivalent(l, r)


def test_refresh_after_value_edit():
    t, l, r = build_with_duplicates()
    cse = CommonSubexpressions(t)
    # Change one leaf: duplicates break...
    leaf = t.node(l).left
    t.set_leaf_value(leaf.nid, 9)
    cse.batch_refresh([leaf.nid])
    assert not cse.equivalent(l, r)
    # ... and restoring it repairs the class.
    t.set_leaf_value(leaf.nid, 1)
    cse.batch_refresh([leaf.nid])
    assert cse.equivalent(l, r)


def test_refresh_after_grow_and_prune():
    t, l, r = build_with_duplicates()
    cse = CommonSubexpressions(t)
    target = t.node(l).left  # leaf '1'
    a, b = t.grow_leaf(target.nid, add_op(), 5, 6)
    cse.batch_refresh([target.nid])
    assert not cse.equivalent(l, r)
    assert cse.equivalent(a, a)
    t.prune_children(target.nid, 1)
    cse.batch_refresh([target.nid], removed=[a, b])
    assert cse.equivalent(l, r)


def test_classes_on_random_tree_agree_with_recompute():
    rng = random.Random(0)
    from repro.trees.builders import random_expression_tree

    t = random_expression_tree(INTEGER, 60, seed=1, mul_probability=0.4)
    cse = CommonSubexpressions(t)
    # Edit a few leaves, refresh, then compare against a fresh instance.
    leaves = [x.nid for x in t.leaves_in_order()]
    dirty = rng.sample(leaves, 6)
    for nid in dirty:
        t.set_leaf_value(nid, rng.randint(-2, 2))
    cse.batch_refresh(dirty)
    fresh = CommonSubexpressions(t)
    got = {frozenset(c) for c in cse.classes()}
    want = {frozenset(c) for c in fresh.classes()}
    assert got == want


def test_unknown_node_rejected():
    t, _, _ = build_with_duplicates()
    cse = CommonSubexpressions(t)
    with pytest.raises(UnknownNodeError):
        cse.code_of(31337)


def test_wound_reported():
    t, l, r = build_with_duplicates()
    cse = CommonSubexpressions(t)
    leaf = t.node(l).left
    t.set_leaf_value(leaf.nid, 4)
    wound = cse.batch_refresh([leaf.nid])
    assert wound == t.depth_of(leaf.nid) + 1  # the root path

"""Canonical forms / tree isomorphism (§5, Theorem 5.2) vs networkx."""

import random

import networkx as nx
import pytest

from repro.algebra.rings import INTEGER
from repro.applications.canonical import CanonicalForms
from repro.trees.builders import (
    balanced_tree,
    caterpillar_tree,
    random_expression_tree,
)
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op


def to_undirected(tree):
    g = nx.Graph()
    g.add_node(tree.root.nid)
    for n in tree.nodes_preorder():
        if not n.is_leaf:
            g.add_edge(n.nid, n.left.nid)
            g.add_edge(n.nid, n.right.nid)
    return g, tree.root.nid


def rooted_isomorphic(t1, t2):
    g1, r1 = to_undirected(t1)
    g2, r2 = to_undirected(t2)
    # Rooted isomorphism via distinguishing the roots.
    nx.set_node_attributes(g1, {r1: 1}, "is_root")
    nx.set_node_attributes(g2, {r2: 1}, "is_root")
    return nx.is_isomorphic(
        g1,
        g2,
        node_match=lambda a, b: a.get("is_root") == b.get("is_root"),
    )


def test_mirror_trees_are_isomorphic():
    table = {}
    t1 = ExprTree(INTEGER, root_value=1)
    a, b = t1.grow_leaf(t1.root.nid, add_op(), 1, 1)
    t1.grow_leaf(a, add_op(), 1, 1)  # heavier left
    t2 = ExprTree(INTEGER, root_value=1)
    c, d = t2.grow_leaf(t2.root.nid, add_op(), 1, 1)
    t2.grow_leaf(d, add_op(), 1, 1)  # heavier right (mirror)
    c1, c2 = CanonicalForms(t1, table=table), CanonicalForms(t2, table=table)
    assert c1.isomorphic(c2)
    assert rooted_isomorphic(t1, t2)


def test_balanced_vs_caterpillar_not_isomorphic():
    table = {}
    t1, t2 = balanced_tree(INTEGER, 3), caterpillar_tree(INTEGER, 8)
    c1, c2 = CanonicalForms(t1, table=table), CanonicalForms(t2, table=table)
    assert not c1.isomorphic(c2)
    assert not rooted_isomorphic(t1, t2)


def test_requires_shared_table():
    t1, t2 = balanced_tree(INTEGER, 2), balanced_tree(INTEGER, 2)
    c1, c2 = CanonicalForms(t1), CanonicalForms(t2)
    with pytest.raises(ValueError):
        c1.isomorphic(c2)


def test_random_pairs_agree_with_networkx():
    rng = random.Random(0)
    table = {}
    for trial in range(15):
        n1 = rng.randint(2, 12)
        n2 = rng.randint(2, 12)
        t1 = random_expression_tree(INTEGER, n1, seed=trial)
        t2 = random_expression_tree(INTEGER, n2, seed=trial + 100)
        c1 = CanonicalForms(t1, table=table)
        c2 = CanonicalForms(t2, table=table)
        assert c1.isomorphic(c2) == rooted_isomorphic(t1, t2), trial


def test_codes_update_after_grow_and_prune():
    table = {}
    t1 = balanced_tree(INTEGER, 3)
    c1 = CanonicalForms(t1, table=table)
    ref = CanonicalForms(balanced_tree(INTEGER, 3), table=table)
    assert c1.isomorphic(ref)
    # Grow one leaf: no longer isomorphic to the reference...
    leaf = t1.leaves_in_order()[0]
    t1.grow_leaf(leaf.nid, add_op(), 1, 1)
    wound = c1.batch_grow([leaf.nid])
    assert wound >= 1
    assert not c1.isomorphic(ref)
    # ... and pruning it back restores isomorphism.
    l, r = t1.node(leaf.nid).left.nid, t1.node(leaf.nid).right.nid
    t1.prune_children(leaf.nid, 1)
    c1.batch_prune([(leaf.nid, l, r)])
    assert c1.isomorphic(ref)


def test_subtree_codes_reflect_shape_equality():
    table = {}
    t = balanced_tree(INTEGER, 4)
    c = CanonicalForms(t, table=table)
    # All depth-3 internal nodes root identical shapes.
    level = [
        n.nid for n in t.nodes_preorder() if not n.is_leaf and t.depth_of(n.nid) == 3
    ]
    codes = {c.code_of(nid) for nid in level}
    assert len(codes) == 1


def test_unknown_node_code_rejected():
    from repro.errors import UnknownNodeError

    c = CanonicalForms(balanced_tree(INTEGER, 2))
    with pytest.raises(UnknownNodeError):
        c.code_of(424242)

"""Dynamic LCA (§5, Theorem 5.2) against the pointer-chasing oracle
and networkx's lowest_common_ancestor."""

import random

import networkx as nx
import pytest

from repro.algebra.rings import INTEGER
from repro.applications.lca import DynamicLCA
from repro.trees.builders import caterpillar_tree, random_expression_tree
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op


def oracle_lca(tree, x, y):
    ancestors = set()
    node = tree.node(x)
    while node is not None:
        ancestors.add(node.nid)
        node = node.parent
    node = tree.node(y)
    while node is not None:
        if node.nid in ancestors:
            return node.nid
        node = node.parent
    raise AssertionError("disconnected?")


def to_networkx(tree):
    g = nx.DiGraph()
    for node in tree.nodes_preorder():
        if not node.is_leaf:
            g.add_edge(node.nid, node.left.nid)
            g.add_edge(node.nid, node.right.nid)
    g.add_node(tree.root.nid)
    return g


def test_lca_matches_oracles():
    tree = random_expression_tree(INTEGER, 120, seed=0)
    lca = DynamicLCA(tree, seed=1)
    g = to_networkx(tree)
    rng = random.Random(0)
    ids = [n.nid for n in tree.nodes_preorder()]
    for _ in range(60):
        x, y = rng.sample(ids, 2)
        got = lca.lca(x, y)
        assert got == oracle_lca(tree, x, y)
        assert got == nx.lowest_common_ancestor(g, x, y)


def test_lca_of_node_with_itself_and_ancestor():
    tree = random_expression_tree(INTEGER, 30, seed=1)
    lca = DynamicLCA(tree, seed=2)
    some = tree.leaves_in_order()[5].nid
    assert lca.lca(some, some) == some
    assert lca.lca(tree.root.nid, some) == tree.root.nid


def test_batch_lca():
    tree = random_expression_tree(INTEGER, 80, seed=2)
    lca = DynamicLCA(tree, seed=3)
    rng = random.Random(2)
    ids = [n.nid for n in tree.nodes_preorder()]
    pairs = [tuple(rng.sample(ids, 2)) for _ in range(15)]
    got = lca.batch_lca(pairs)
    assert got == [oracle_lca(tree, x, y) for x, y in pairs]


def test_lca_on_deep_caterpillar():
    tree = caterpillar_tree(INTEGER, 300)
    lca = DynamicLCA(tree, seed=4)
    leaves = tree.leaves_in_order()
    a, b = leaves[50].nid, leaves[250].nid
    assert lca.lca(a, b) == oracle_lca(tree, a, b)


def test_lca_tracks_structural_updates():
    rng = random.Random(5)
    tree = ExprTree(INTEGER, root_value=1)
    lca = DynamicLCA(tree, seed=6)
    for _ in range(30):
        leaves = [l.nid for l in tree.leaves_in_order()]
        target = rng.choice(leaves)
        l, r = tree.grow_leaf(target, add_op(), 1, 1)
        lca.batch_grow([(target, l, r)])
        ids = [n.nid for n in tree.nodes_preorder()]
        x, y = rng.sample(ids, 2) if len(ids) > 1 else (ids[0], ids[0])
        assert lca.lca(x, y) == oracle_lca(tree, x, y)

"""Dynamic Euler tours vs the static traversal oracle."""

import random

import pytest

from repro.algebra.rings import INTEGER
from repro.applications.euler import DynamicEulerTour, tour_monoid
from repro.errors import UnknownNodeError
from repro.trees.builders import caterpillar_tree, random_expression_tree
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op
from repro.trees.traversal import euler_tour, preorder_ids


def fresh(n, seed=0):
    tree = random_expression_tree(INTEGER, n, seed=seed)
    return tree, DynamicEulerTour(tree, seed=seed + 1)


def test_initial_tour_matches_static_oracle():
    tree, tour = fresh(120, seed=0)
    assert tour.tour_nodes() == [e.nid for e in euler_tour(tree)]


def test_monoid_is_associative_on_samples():
    m = tour_monoid()
    rng = random.Random(0)
    elems = [
        (rng.choice([1, -1]), rng.choice([1, -1]), rng.randint(0, 9), rng.randint(0, 1))
        for _ in range(30)
    ]
    for _ in range(50):
        a, b, c = rng.sample(elems, 3)
        assert m.combine(m.combine(a, b), c) == m.combine(a, m.combine(b, c))


def test_depths_and_preorder():
    tree, tour = fresh(150, seed=1)
    ids = [n.nid for n in tree.nodes_preorder()]
    depths = tour.batch_depths(ids)
    assert depths == [tree.depth_of(nid) for nid in ids]
    rank = {nid: i for i, nid in enumerate(preorder_ids(tree))}
    assert tour.batch_preorder(ids) == [rank[nid] for nid in ids]


def test_unknown_node_rejected():
    tree, tour = fresh(10, seed=2)
    with pytest.raises(UnknownNodeError):
        tour.batch_depths([12345])


def test_grow_updates_tour():
    tree, tour = fresh(30, seed=3)
    leaf = tree.leaves_in_order()[7]
    l, r = tree.grow_leaf(leaf.nid, add_op(), 1, 2)
    tour.batch_grow([(leaf.nid, l, r)])
    assert tour.tour_nodes() == [e.nid for e in euler_tour(tree)]
    assert tour.batch_depths([l, r]) == [tree.depth_of(l), tree.depth_of(r)]


def test_prune_updates_tour():
    tree, tour = fresh(30, seed=4)
    cand = next(
        n
        for n in tree.nodes_preorder()
        if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
    )
    l, r = cand.left.nid, cand.right.nid
    tree.prune_children(cand.nid, 0)
    tour.batch_prune([(cand.nid, l, r)])
    assert tour.tour_nodes() == [e.nid for e in euler_tour(tree)]


def test_long_structural_churn_stays_in_sync():
    rng = random.Random(5)
    tree = ExprTree(INTEGER, root_value=1)
    tour = DynamicEulerTour(tree, seed=6)
    for step in range(60):
        if rng.random() < 0.7 or len(tree) < 5:
            targets = rng.sample(
                [l.nid for l in tree.leaves_in_order()],
                min(2, len(tree.leaves_in_order())),
            )
            grown = []
            for nid in targets:
                l, r = tree.grow_leaf(nid, add_op(), 1, 1)
                grown.append((nid, l, r))
            tour.batch_grow(grown)
        else:
            cands = [
                n
                for n in tree.nodes_preorder()
                if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
            ]
            if cands:
                c = rng.choice(cands)
                rec = (c.nid, c.left.nid, c.right.nid)
                tree.prune_children(c.nid, 1)
                tour.batch_prune([rec])
        assert tour.tour_nodes() == [e.nid for e in euler_tour(tree)]
        sample = rng.sample([n.nid for n in tree.nodes_preorder()], min(4, len(tree)))
        assert tour.batch_depths(sample) == [tree.depth_of(nid) for nid in sample]


def test_deep_tree_depths():
    tree = caterpillar_tree(INTEGER, 200)
    tour = DynamicEulerTour(tree, seed=7)
    deepest = max(tree.nodes_preorder(), key=lambda n: tree.depth_of(n.nid))
    assert tour.batch_depths([deepest.nid]) == [tree.depth_of(deepest.nid)]

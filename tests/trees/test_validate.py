"""The validator must catch each class of corruption it claims to."""

import pytest

from repro.algebra.rings import INTEGER
from repro.errors import TreeStructureError
from repro.trees.builders import random_expression_tree
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op
from repro.trees.validate import check_tree


def corruptible():
    t = ExprTree(INTEGER, root_value=0)
    l, r = t.grow_leaf(t.root.nid, add_op(), 1, 2)
    return t, t.node(l), t.node(r)


def test_valid_tree_passes():
    check_tree(random_expression_tree(INTEGER, 100, seed=0))


def test_detects_broken_parent_pointer():
    t, l, r = corruptible()
    l.parent = None
    with pytest.raises(TreeStructureError):
        check_tree(t)


def test_detects_half_internal_node():
    t, l, r = corruptible()
    t.root.right = None
    with pytest.raises(TreeStructureError):
        check_tree(t)


def test_detects_leaf_without_value():
    t, l, r = corruptible()
    l.value = None
    with pytest.raises(TreeStructureError):
        check_tree(t)


def test_detects_internal_with_value():
    t, l, r = corruptible()
    t.root.value = 5
    with pytest.raises(TreeStructureError):
        check_tree(t)


def test_detects_cycle():
    t, l, r = corruptible()
    l.op = add_op()
    l.left = t.root
    l.right = r
    with pytest.raises(TreeStructureError):
        check_tree(t)


def test_detects_orphan_registry_entry():
    t, l, r = corruptible()
    ghost_tree = ExprTree(INTEGER, root_value=0)
    t._nodes[999] = ghost_tree.root
    with pytest.raises(TreeStructureError):
        check_tree(t)

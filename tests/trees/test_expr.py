"""Expression-tree structure, mutation repertoire and oracle evaluation."""

import pytest

from repro.algebra.rings import INTEGER, modular_ring
from repro.errors import NotALeafError, TreeStructureError, UnknownNodeError
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op, mul_op
from repro.trees.validate import check_tree


def small_tree():
    t = ExprTree(INTEGER, root_value=1)
    l, r = t.grow_leaf(t.root.nid, add_op(), 2, 3)
    return t, l, r


def test_single_leaf_tree_evaluates_to_its_value():
    t = ExprTree(INTEGER, root_value=7)
    assert t.evaluate() == 7
    assert len(t) == 1
    check_tree(t)


def test_grow_turns_leaf_internal():
    t, l, r = small_tree()
    assert t.evaluate() == 5
    assert not t.root.is_leaf
    assert t.node(l).is_leaf and t.node(r).is_leaf
    check_tree(t)


def test_grow_rejects_internal_target():
    t, l, r = small_tree()
    with pytest.raises(NotALeafError):
        t.grow_leaf(t.root.nid, add_op(), 0, 0)


def test_prune_restores_leaf():
    t, l, r = small_tree()
    removed = t.prune_children(t.root.nid, 9)
    assert removed == (l, r)
    assert t.root.is_leaf
    assert t.evaluate() == 9
    assert l not in t and r not in t
    check_tree(t)


def test_prune_rejects_leaf_and_deep_targets():
    t, l, r = small_tree()
    with pytest.raises(TreeStructureError):
        t.prune_children(l, 0)  # leaf
    t.grow_leaf(l, mul_op(), 4, 5)
    with pytest.raises(TreeStructureError):
        t.prune_children(t.root.nid, 0)  # children not both leaves
    check_tree(t)


def test_set_leaf_value_and_op():
    t, l, r = small_tree()
    t.set_leaf_value(l, 10)
    assert t.evaluate() == 13
    t.set_op(t.root.nid, mul_op())
    assert t.evaluate() == 30
    with pytest.raises(NotALeafError):
        t.set_leaf_value(t.root.nid, 1)
    with pytest.raises(TreeStructureError):
        t.set_op(l, add_op())


def test_unknown_node_errors():
    t, _, _ = small_tree()
    with pytest.raises(UnknownNodeError):
        t.node(999)


def test_add_const_op_semantics():
    t = ExprTree(INTEGER, root_value=0)
    t.grow_leaf(t.root.nid, add_op(const=100), 1, 2)
    assert t.evaluate() == 103


def test_evaluate_subtree():
    t = ExprTree(INTEGER, root_value=0)
    l, r = t.grow_leaf(t.root.nid, add_op(), 1, 2)
    ll, lr = t.grow_leaf(l, mul_op(), 3, 4)
    assert t.evaluate(at=l) == 12
    assert t.evaluate(at=ll) == 3
    assert t.evaluate() == 14


def test_evaluate_over_modular_ring():
    ring = modular_ring(5)
    t = ExprTree(ring, root_value=0)
    t.grow_leaf(t.root.nid, mul_op(), 3, 4)
    assert t.evaluate() == 2  # 12 mod 5


def test_deep_tree_evaluation_is_iterative():
    # 5000-deep caterpillar must not hit the recursion limit.
    t = ExprTree(INTEGER, root_value=0)
    spine = t.root.nid
    for _ in range(5000):
        _, spine = t.grow_leaf(spine, add_op(), 1, 0)
    assert t.evaluate() == 5000
    assert t.height() == 5000


def test_leaves_in_order_and_version_bumps():
    t, l, r = small_tree()
    v0 = t.version
    assert [x.nid for x in t.leaves_in_order()] == [l, r]
    t.set_leaf_value(l, 0)
    assert t.version == v0 + 1


def test_depth_of():
    t, l, r = small_tree()
    assert t.depth_of(t.root.nid) == 0
    assert t.depth_of(l) == 1

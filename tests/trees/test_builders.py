"""Workload generators produce valid trees of the promised shapes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.rings import INTEGER
from repro.trees.builders import (
    balanced_tree,
    caterpillar_tree,
    random_expression_tree,
    random_tree,
)
from repro.trees.validate import check_tree


def test_balanced_tree_shape():
    t = balanced_tree(INTEGER, depth=5)
    check_tree(t)
    assert len(t.leaves_in_order()) == 32
    assert t.height() == 5


def test_caterpillar_is_maximally_deep():
    t = caterpillar_tree(INTEGER, n_leaves=50)
    check_tree(t)
    assert len(t.leaves_in_order()) == 50
    assert t.height() == 49


def test_caterpillar_single_leaf():
    t = caterpillar_tree(INTEGER, n_leaves=1)
    assert t.root.is_leaf


@pytest.mark.parametrize("builder", [caterpillar_tree, random_tree])
def test_builders_reject_zero_leaves(builder):
    with pytest.raises(ValueError):
        builder(INTEGER, 0)


@given(n=st.integers(1, 200), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_random_tree_leaf_count_and_validity(n, seed):
    t = random_tree(INTEGER, n, random.Random(seed))
    check_tree(t)
    assert len(t.leaves_in_order()) == n


def test_random_tree_is_seed_deterministic():
    def shape(seed):
        t = random_expression_tree(INTEGER, 64, seed=seed)
        return [n.is_leaf for n in t.nodes_preorder()]

    assert shape(5) == shape(5)
    assert shape(5) != shape(6)


def test_random_tree_expected_depth_logarithmic():
    depths = []
    for seed in range(10):
        t = random_tree(INTEGER, 1024, random.Random(seed))
        depths.append(t.height())
    mean = sum(depths) / len(depths)
    # E[depth] ~ c*log2(1024) = c*10 with small c; far below linear.
    assert 10 <= mean <= 80


def test_random_expression_tree_mixes_ops():
    t = random_expression_tree(INTEGER, 500, seed=3, mul_probability=0.5)
    kinds = {n.op.kind for n in t.nodes_preorder() if not n.is_leaf}
    assert kinds == {"add", "mul"}

"""Euler tours and orderings against first-principles oracles."""

from hypothesis import given, settings, strategies as st

from repro.algebra.rings import INTEGER
from repro.trees.builders import balanced_tree, caterpillar_tree, random_expression_tree
from repro.trees.traversal import euler_tour, first_visits, preorder_ids


def recursive_preorder(tree):
    out = []

    def go(node):
        out.append(node.nid)
        if not node.is_leaf:
            go(node.left)
            go(node.right)

    go(tree.root)
    return out


def test_preorder_matches_recursive_oracle():
    t = random_expression_tree(INTEGER, 100, seed=1)
    assert preorder_ids(t) == recursive_preorder(t)


def test_euler_tour_event_count():
    # 2*edges + 1 events = 2*(nodes-1) + 1.
    t = random_expression_tree(INTEGER, 60, seed=2)
    events = euler_tour(t)
    assert len(events) == 2 * (len(t) - 1) + 1


def test_euler_tour_enter_counts_and_up_counts():
    t = balanced_tree(INTEGER, 4)
    events = euler_tour(t)
    enters = [e for e in events if e.kind == "enter"]
    ups = [e for e in events if e.kind == "up"]
    assert len(enters) == len(t)
    internal = len(t) - len(t.leaves_in_order())
    assert len(ups) == 2 * internal


def test_euler_tour_depth_profile():
    t = caterpillar_tree(INTEGER, 10)
    depth = 0
    seen_depth = {}
    events = euler_tour(t)
    for ev in events:
        if ev.kind == "enter":
            depth += 1
            seen_depth.setdefault(ev.nid, depth - 1)
        else:
            depth -= 1
    assert depth == 1  # root's enter never popped
    for nid, d in seen_depth.items():
        assert d == t.depth_of(nid)


def test_first_visits_are_enter_positions():
    t = random_expression_tree(INTEGER, 40, seed=4)
    events = euler_tour(t)
    fv = first_visits(events)
    for nid, idx in fv.items():
        assert events[idx].nid == nid and events[idx].kind == "enter"
        # no earlier enter for the same node
        assert all(
            not (e.kind == "enter" and e.nid == nid) for e in events[:idx]
        )


@given(n=st.integers(1, 80), seed=st.integers(0, 20))
@settings(max_examples=25, deadline=None)
def test_enter_order_is_preorder(n, seed):
    t = random_expression_tree(INTEGER, n, seed=seed)
    events = euler_tour(t)
    enters = [e.nid for e in events if e.kind == "enter"]
    assert enters == preorder_ids(t)

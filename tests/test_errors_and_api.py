"""Exception hierarchy and public API surface."""

import pytest

import repro
from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "PRAMError",
        "WriteConflictError",
        "ProcessorLimitError",
        "MachineStateError",
        "TreeStructureError",
        "NotALeafError",
        "UnknownNodeError",
        "AlgebraError",
        "RequestError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError), name


def test_sub_hierarchies():
    assert issubclass(errors.WriteConflictError, errors.PRAMError)
    assert issubclass(errors.NotALeafError, errors.TreeStructureError)


def test_library_never_raises_bare_exceptions():
    """Catching ReproError must be enough for structure misuse."""
    from repro import RBSTS

    tree = RBSTS([1])
    with pytest.raises(errors.ReproError):
        tree.delete(tree.leaf_at(0))


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts[:2])


def test_quickstart_docstring_flow():
    """The README/docstring quickstart must actually run."""
    from repro import INTEGER, DynamicExpression

    expr = DynamicExpression.from_random(INTEGER, n_leaves=100, seed=1)
    before = expr.value()
    leaf = expr.some_leaf()
    expr.batch_set_values([(leaf, 42)])
    assert expr.value() == expr.tree.evaluate()
    assert expr.tree.node(leaf).value == 42
    assert isinstance(before, int)

"""Theorem 3.1 — incremental list prefix against itertools oracles."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.monoid import max_monoid, min_monoid, sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import RequestError
from repro.listprefix.structure import IncrementalListPrefix
from repro.pram.frames import SpanTracker


def sum_lp(values, seed=0):
    return IncrementalListPrefix(sum_monoid(INTEGER), values, seed=seed)


@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=150),
    seed=st.integers(0, 20),
)
@settings(max_examples=40, deadline=None)
def test_single_prefix_matches_accumulate(values, seed):
    lp = sum_lp(values, seed)
    prefixes = list(itertools.accumulate(values))
    handles = lp.handles()
    for i in (0, len(values) // 2, len(values) - 1):
        assert lp.prefix(handles[i]) == prefixes[i]


@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=150),
    seed=st.integers(0, 20),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_batch_prefix_matches_accumulate(values, seed, data):
    lp = sum_lp(values, seed)
    prefixes = list(itertools.accumulate(values))
    k = data.draw(st.integers(1, min(20, len(values))))
    idxs = data.draw(
        st.lists(
            st.integers(0, len(values) - 1), min_size=k, max_size=k, unique=True
        )
    )
    handles = lp.handles()
    got = lp.batch_prefix([handles[i] for i in idxs])
    assert got == [prefixes[i] for i in idxs]


def test_total_is_exactly_maintained():
    lp = sum_lp([1, 2, 3])
    assert lp.total() == 6
    lp.batch_set([(lp.handle_at(1), 10)])
    assert lp.total() == 14  # O(1) read, no recomputation


def test_batch_prefix_empty():
    lp = sum_lp([1])
    assert lp.batch_prefix([]) == []


def test_batch_prefix_duplicate_handles():
    lp = sum_lp([1, 2, 3])
    h = lp.handle_at(1)
    assert lp.batch_prefix([h, h]) == [3, 3]


@given(
    values=st.lists(st.integers(-20, 20), min_size=2, max_size=100),
    seed=st.integers(0, 10),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_range_fold_min_max(values, seed, data):
    i = data.draw(st.integers(0, len(values) - 1))
    j = data.draw(st.integers(i, len(values) - 1))
    for monoid, oracle in ((min_monoid(), min), (max_monoid(), max)):
        lp = IncrementalListPrefix(monoid, values, seed=seed)
        hs = lp.handles()
        assert lp.range_fold(hs[i], hs[j]) == oracle(values[i : j + 1])


def test_range_fold_single_element():
    lp = sum_lp([5, 7, 9])
    h = lp.handle_at(1)
    assert lp.range_fold(h, h) == 7


def test_range_fold_rejects_reversed():
    lp = sum_lp([1, 2, 3])
    with pytest.raises(RequestError):
        lp.range_fold(lp.handle_at(2), lp.handle_at(0))


def test_inserts_deletes_updates_keep_prefixes():
    rng = random.Random(0)
    values = [rng.randint(-9, 9) for _ in range(60)]
    lp = sum_lp(values, seed=1)
    model = list(values)
    for round_ in range(12):
        reqs = [(rng.randint(0, len(model)), rng.randint(-9, 9)) for _ in range(3)]
        lp.batch_insert(reqs)
        by_pos = {}
        for pos, v in reqs:
            by_pos.setdefault(pos, []).append(v)
        out = []
        for pos in range(len(model) + 1):
            out.extend(by_pos.get(pos, []))
            if pos < len(model):
                out.append(model[pos])
        model = out
        victims_idx = rng.sample(range(len(model)), 2)
        lp.batch_delete([lp.handle_at(i) for i in victims_idx])
        model = [x for i, x in enumerate(model) if i not in set(victims_idx)]
        assert lp.values() == model
        prefixes = list(itertools.accumulate(model))
        sample = rng.sample(range(len(model)), 5)
        hs = lp.handles()
        assert lp.batch_prefix([hs[i] for i in sample]) == [
            prefixes[i] for i in sample
        ]


def test_batch_prefix_span_beats_sequential():
    import math

    n = 1 << 12
    values = list(range(n))
    lp = sum_lp(values, seed=2)
    hs = lp.handles()
    idxs = random.Random(1).sample(range(n), 32)
    tracker = SpanTracker()
    lp.batch_prefix([hs[i] for i in idxs], tracker)
    assert tracker.span <= 32 * math.log2(n) / 4  # far below |U| log n


def test_works_with_noncommutative_monoid():
    """Prefix machinery needs associativity only: string concatenation."""
    from repro.algebra.monoid import Monoid

    concat = Monoid("concat", "", lambda a, b: a + b)
    lp = IncrementalListPrefix(concat, list("hello world"), seed=3)
    hs = lp.handles()
    assert lp.prefix(hs[4]) == "hello"
    assert lp.batch_prefix([hs[10]]) == ["hello world"]
    assert lp.range_fold(hs[6], hs[10]) == "world"

"""Monoid instances used by the list-prefix structure."""

from hypothesis import given, strategies as st

from repro.algebra.monoid import (
    argmin_monoid,
    count_monoid,
    max_monoid,
    min_monoid,
    sum_monoid,
)
from repro.algebra.rings import INTEGER


@given(st.lists(st.integers(-100, 100)))
def test_sum_fold_matches_builtin(xs):
    assert sum_monoid(INTEGER).fold(xs) == sum(xs)


@given(st.lists(st.integers(-100, 100), min_size=1))
def test_min_max_folds(xs):
    assert min_monoid().fold(xs) == min(xs)
    assert max_monoid().fold(xs) == max(xs)


def test_min_identity_is_absorbing_empty():
    assert min_monoid().fold([]) == float("inf")
    assert max_monoid().fold([]) == -float("inf")


@given(st.lists(st.integers(0, 50)))
def test_count_fold(xs):
    assert count_monoid().fold([1] * len(xs)) == len(xs)


@given(st.lists(st.tuples(st.integers(-20, 20), st.integers(0, 999)), min_size=1))
def test_argmin_keeps_leftmost_minimum(pairs):
    m = argmin_monoid()
    got = m.fold(pairs)
    best_key = min(k for k, _ in pairs)
    first = next(p for p in pairs if p[0] == best_key)
    assert got == first


@given(
    st.lists(st.tuples(st.integers(-20, 20), st.integers(0, 999)), min_size=1),
    st.integers(0, 10),
)
def test_argmin_associative_on_random_split(pairs, cut):
    m = argmin_monoid()
    cut = min(cut, len(pairs))
    left, right = pairs[:cut], pairs[cut:]
    assert m.combine(m.fold(left), m.fold(right)) == m.fold(pairs)

"""Affine-map laws — the algebra Theorem 4.2 rests on."""

import pytest
from hypothesis import given, strategies as st

from repro.algebra.affine import Affine1, Affine2
from tests.conftest import RINGS, ring_elements


def affine1(name, data):
    elems = ring_elements(name)
    return Affine1(RINGS[name], data.draw(elems), data.draw(elems))


def affine2(name, data):
    elems = ring_elements(name)
    d = lambda: data.draw(elems)  # noqa: E731
    return Affine2(RINGS[name], ((d(), d()), (d(), d())), (d(), d()))


@pytest.mark.parametrize("name", sorted(RINGS))
class TestAffine1:
    @given(data=st.data())
    def test_identity_is_neutral(self, name, data):
        ring = RINGS[name]
        f = affine1(name, data)
        ident = Affine1.identity(ring)
        assert f.compose(ident).equal(f)
        assert ident.compose(f).equal(f)

    @given(data=st.data())
    def test_composition_matches_pointwise(self, name, data):
        f = affine1(name, data)
        g = affine1(name, data)
        x = data.draw(ring_elements(name))
        assert RINGS[name].eq(f.compose(g)(x), f(g(x)))

    @given(data=st.data())
    def test_composition_associative(self, name, data):
        f, g, h = (affine1(name, data) for _ in range(3))
        left = f.compose(g).compose(h)
        right = f.compose(g.compose(h))
        assert left.equal(right)

    @given(data=st.data())
    def test_constant_ignores_input(self, name, data):
        ring = RINGS[name]
        v = data.draw(ring_elements(name))
        x = data.draw(ring_elements(name))
        c = Affine1.constant(ring, v)
        assert ring.eq(c(x), v)


@pytest.mark.parametrize("name", sorted(RINGS))
class TestAffine2:
    @given(data=st.data())
    def test_identity_is_neutral(self, name, data):
        ring = RINGS[name]
        f = affine2(name, data)
        ident = Affine2.identity(ring)
        assert f.compose(ident).equal(f)
        assert ident.compose(f).equal(f)

    @given(data=st.data())
    def test_composition_matches_pointwise(self, name, data):
        ring = RINGS[name]
        f = affine2(name, data)
        g = affine2(name, data)
        elems = ring_elements(name)
        v = (data.draw(elems), data.draw(elems))
        lhs = f.compose(g)(v)
        rhs = f(g(v))
        assert ring.eq(lhs[0], rhs[0]) and ring.eq(lhs[1], rhs[1])

    @given(data=st.data())
    def test_composition_associative(self, name, data):
        f, g, h = (affine2(name, data) for _ in range(3))
        assert f.compose(g).compose(h).equal(f.compose(g.compose(h)))

    @given(data=st.data())
    def test_constant_ignores_input(self, name, data):
        ring = RINGS[name]
        elems = ring_elements(name)
        val = (data.draw(elems), data.draw(elems))
        v = (data.draw(elems), data.draw(elems))
        c = Affine2.constant(ring, val)
        out = c(v)
        assert ring.eq(out[0], val[0]) and ring.eq(out[1], val[1])

"""Ring/semiring axioms, property-based over every bundled instance."""

import pytest
from hypothesis import given, strategies as st

from repro.algebra.rings import modular_ring
from tests.conftest import RINGS, ring_elements


@pytest.mark.parametrize("name", sorted(RINGS))
class TestAxioms:
    @given(data=st.data())
    def test_add_commutative_associative(self, name, data):
        ring = RINGS[name]
        elems = ring_elements(name)
        a, b, c = (data.draw(elems) for _ in range(3))
        assert ring.eq(ring.add(a, b), ring.add(b, a))
        assert ring.eq(
            ring.add(ring.add(a, b), c), ring.add(a, ring.add(b, c))
        )

    @given(data=st.data())
    def test_mul_commutative_associative(self, name, data):
        ring = RINGS[name]
        elems = ring_elements(name)
        a, b, c = (data.draw(elems) for _ in range(3))
        assert ring.eq(ring.mul(a, b), ring.mul(b, a))
        assert ring.eq(
            ring.mul(ring.mul(a, b), c), ring.mul(a, ring.mul(b, c))
        )

    @given(data=st.data())
    def test_identities(self, name, data):
        ring = RINGS[name]
        a = data.draw(ring_elements(name))
        assert ring.eq(ring.add(a, ring.zero), a)
        assert ring.eq(ring.mul(a, ring.one), a)

    @given(data=st.data())
    def test_distributivity(self, name, data):
        ring = RINGS[name]
        elems = ring_elements(name)
        a, b, c = (data.draw(elems) for _ in range(3))
        assert ring.eq(
            ring.mul(a, ring.add(b, c)),
            ring.add(ring.mul(a, b), ring.mul(a, c)),
        )

    @given(data=st.data())
    def test_zero_annihilates(self, name, data):
        ring = RINGS[name]
        a = data.draw(ring_elements(name))
        assert ring.eq(ring.mul(a, ring.zero), ring.zero)


def test_sum_and_product_folds():
    ring = RINGS["integer"]
    assert ring.sum([1, 2, 3, 4]) == 10
    assert ring.product([1, 2, 3, 4]) == 24
    assert ring.sum([]) == 0
    assert ring.product([]) == 1


def test_modular_ring_rejects_bad_modulus():
    with pytest.raises(ValueError):
        modular_ring(1)
    with pytest.raises(ValueError):
        modular_ring(0)


def test_modular_arithmetic_wraps():
    ring = modular_ring(7)
    assert ring.add(5, 5) == 3
    assert ring.mul(3, 5) == 1
    assert ring.one == 1


def test_float_ring_tolerant_equality():
    ring = RINGS["integer"]
    from repro.algebra.rings import FLOAT

    assert FLOAT.eq(0.1 + 0.2, 0.3)
    assert not FLOAT.eq(1.0, 1.1)
    assert ring.eq(3, 3)

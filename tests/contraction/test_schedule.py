"""The RBSTS-guided rake schedule (§4.2)."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.contraction.schedule import build_schedule
from repro.splitting.rbsts import RBSTS


@given(n=st.integers(1, 400), seed=st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_schedule_rakes_each_leaf_item_once_except_last(n, seed):
    t = RBSTS(range(n), seed=seed)
    sched = build_schedule(t.root)
    raked = [ev.raked for ev in sched.events()]
    assert len(raked) == n - 1
    assert len(set(raked)) == n - 1
    # The never-raked item is the rightmost leaf (the root's corr).
    assert set(raked) == set(range(n)) - {n - 1}


@given(n=st.integers(2, 400), seed=st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_no_adjacent_leaves_raked_in_one_round(n, seed):
    """The paper's validity argument: no two siblings raked together;
    siblings are adjacent in leaf order."""
    t = RBSTS(range(n), seed=seed)
    sched = build_schedule(t.root)
    for rnd in sched.rounds:
        raked = sorted(ev.raked for ev in rnd)
        for a, b in zip(raked, raked[1:]):
            assert b - a >= 2, (n, seed, rnd)


@given(n=st.integers(2, 400), seed=st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_round_count_equals_pt_depth_order(n, seed):
    t = RBSTS(range(n), seed=seed)
    sched = build_schedule(t.root)
    assert sched.n_rounds <= t.depth()
    assert sched.n_rounds >= math.ceil(math.log2(n))


def test_rounds_expected_logarithmic():
    rounds = []
    for seed in range(10):
        t = RBSTS(range(1024), seed=seed)
        rounds.append(build_schedule(t.root).n_rounds)
    mean = sum(rounds) / len(rounds)
    assert 10 <= mean <= 45  # c * log2(1024), small c


def test_events_within_round_left_to_right():
    t = RBSTS(range(100), seed=7)
    sched = build_schedule(t.root)
    for rnd in sched.rounds:
        positions = [ev.raked for ev in rnd]
        assert positions == sorted(positions)


def test_survivor_is_right_interval_representative():
    t = RBSTS(range(50), seed=3)
    sched = build_schedule(t.root)
    for ev in sched.events():
        assert ev.raked < ev.survivor  # left rep < right rep in order


def test_single_leaf_schedule_empty():
    t = RBSTS([0])
    sched = build_schedule(t.root)
    assert sched.n_rounds == 0
    assert sched.events() == []

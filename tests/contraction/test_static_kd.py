"""Deterministic Kosaraju–Delcher contraction (the §4 baseline)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.rings import BOOLEAN, INTEGER, modular_ring, tropical_semiring
from repro.contraction.static_kd import contract
from repro.pram.frames import SpanTracker
from repro.trees.builders import (
    balanced_tree,
    caterpillar_tree,
    random_expression_tree,
)
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op, mul_op


@given(n=st.integers(1, 300), seed=st.integers(0, 40))
@settings(max_examples=50, deadline=None)
def test_value_matches_oracle(n, seed):
    tree = random_expression_tree(INTEGER, n, seed=seed)
    assert contract(tree).value == tree.evaluate()


def test_single_leaf():
    tree = ExprTree(INTEGER, root_value=5)
    result = contract(tree)
    assert result.value == 5 and result.rounds == 0 and result.rakes == 0


def test_round_count_is_ceil_log2():
    for exp in (3, 6, 9):
        tree = balanced_tree(INTEGER, exp)
        result = contract(tree)
        leaves = 1 << exp
        assert result.rounds == math.ceil(math.log2(leaves))
        assert result.rakes == leaves - 1


def test_caterpillar_rounds_still_logarithmic():
    """KD's point: rounds depend on leaf count, not tree depth."""
    tree = caterpillar_tree(INTEGER, 256)
    result = contract(tree)
    assert result.rounds == math.ceil(math.log2(256))
    assert result.value == tree.evaluate()


def test_tree_left_untouched():
    tree = random_expression_tree(INTEGER, 50, seed=1)
    before = tree.evaluate()
    contract(tree)
    assert tree.evaluate() == before
    from repro.trees.validate import check_tree

    check_tree(tree)


def test_tracker_span_two_per_round():
    tree = balanced_tree(INTEGER, 6)
    tracker = SpanTracker()
    result = contract(tree, tracker)
    assert tracker.span == 2 * result.rounds


@pytest.mark.parametrize(
    "ring",
    [INTEGER, modular_ring(101), BOOLEAN, tropical_semiring()],
    ids=["int", "mod101", "bool", "tropical"],
)
def test_ring_agnostic(ring):
    tree = ExprTree(ring, root_value=ring.one)
    l, r = tree.grow_leaf(tree.root.nid, add_op(), ring.one, ring.zero)
    tree.grow_leaf(l, mul_op(), ring.one, ring.one)
    assert contract(tree).value == tree.evaluate()


def test_deep_mul_chain():
    tree = caterpillar_tree(
        INTEGER, 64, ops=lambda rng: mul_op(), values=lambda rng: 2
    )
    assert contract(tree).value == tree.evaluate()

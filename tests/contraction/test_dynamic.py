"""DynamicTreeContraction — the §4 facade, against oracles and errors."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.rings import INTEGER, modular_ring
from repro.contraction.dynamic import DynamicTreeContraction
from repro.errors import RequestError, TreeStructureError, UnknownNodeError
from repro.pram.frames import SpanTracker
from repro.trees.builders import caterpillar_tree, random_expression_tree
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op, mul_op


def make(n, seed=0):
    tree = random_expression_tree(INTEGER, n, seed=seed)
    return tree, DynamicTreeContraction(tree, seed=seed + 1)


def test_initial_value_and_consistency():
    tree, d = make(123, seed=0)
    assert d.value() == tree.evaluate()
    d.check_consistency()


def test_value_on_single_leaf():
    tree = ExprTree(INTEGER, root_value=11)
    d = DynamicTreeContraction(tree)
    assert d.value() == 11
    d.batch_grow([(tree.root.nid, add_op(), 1, 2)])
    assert d.value() == 3
    d.check_consistency()


@given(n=st.integers(2, 120), seed=st.integers(0, 20), k=st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_leaf_value_batches(n, seed, k):
    tree, d = make(n, seed)
    rng = random.Random(seed)
    leaves = tree.leaves_in_order()
    updates = [
        (leaf.nid, rng.randint(-5, 5))
        for leaf in rng.sample(leaves, min(k, len(leaves)))
    ]
    d.batch_set_leaf_values(updates)
    assert d.value() == tree.evaluate()


def test_op_batches():
    tree, d = make(60, seed=1)
    internal = [n.nid for n in tree.nodes_preorder() if not n.is_leaf]
    d.batch_set_ops([(internal[0], mul_op()), (internal[-1], add_op(const=5))])
    assert d.value() == tree.evaluate()
    d.check_consistency()


def test_set_op_on_leaf_rejected():
    tree, d = make(10, seed=2)
    leaf = tree.leaves_in_order()[0]
    with pytest.raises(TreeStructureError):
        d.batch_set_ops([(leaf.nid, add_op())])


def test_grow_rejects_duplicate_targets():
    tree, d = make(10, seed=3)
    leaf = tree.leaves_in_order()[0].nid
    with pytest.raises(RequestError):
        d.batch_grow([(leaf, add_op(), 1, 1), (leaf, add_op(), 2, 2)])


def test_grow_rejects_internal_target():
    tree, d = make(10, seed=4)
    with pytest.raises(UnknownNodeError):
        d.batch_grow([(tree.root.nid, add_op(), 1, 1)])


def test_prune_rejects_duplicates_and_leaves():
    tree, d = make(10, seed=5)
    leaf = tree.leaves_in_order()[0].nid
    with pytest.raises(TreeStructureError):
        d.batch_prune([(leaf, 0)])
    cands = [
        n.nid
        for n in tree.nodes_preorder()
        if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
    ]
    with pytest.raises(RequestError):
        d.batch_prune([(cands[0], 0), (cands[0], 1)])


def test_query_values_match_subtree_evaluation():
    tree, d = make(150, seed=6)
    rng = random.Random(6)
    ids = rng.sample([n.nid for n in tree.nodes_preorder()], 30)
    values = d.query_values(ids)
    for nid, v in zip(ids, values):
        assert v == tree.evaluate(at=nid)


def test_query_unknown_node_rejected():
    tree, d = make(10, seed=7)
    with pytest.raises(UnknownNodeError):
        d.query_values([99999])


def test_caterpillar_tree_supported():
    """Unbounded-depth input, the paper's stress case."""
    tree = caterpillar_tree(INTEGER, 400, random.Random(0))
    d = DynamicTreeContraction(tree, seed=1)
    assert d.value() == tree.evaluate()
    # Rounds stay logarithmic despite depth 399.
    assert d.rounds() <= 60
    leaf = tree.leaves_in_order()[200]
    d.batch_set_leaf_values([(leaf.nid, 99)])
    assert d.value() == tree.evaluate()


def test_label_update_span_doubly_logarithmic():
    import math

    tree, d = make(1 << 12, seed=8)
    leaf = tree.leaves_in_order()[100]
    tracker = SpanTracker()
    d.batch_set_leaf_values([(leaf.nid, 5)], tracker)
    n = 1 << 12
    # O(log(|U| log n)) with |U| = 1: far below log2 n.
    assert tracker.span <= 4 * math.log2(math.log2(n) + 2) + 16


def test_structural_wound_scales_with_u_log_n():
    import math

    tree, d = make(1 << 11, seed=9)
    rng = random.Random(9)
    leaves = [l.nid for l in tree.leaves_in_order()]
    reqs = [(nid, add_op(), 1, 2) for nid in rng.sample(leaves, 8)]
    d.batch_grow(reqs)
    wound = d.last_stats["fresh_rt_nodes"]
    assert wound <= 30 * 8 * math.log2(1 << 11)
    assert d.value() == tree.evaluate()


def test_modular_ring_dynamic():
    ring = modular_ring(257)
    tree = random_expression_tree(ring, 100, seed=10)
    d = DynamicTreeContraction(tree, seed=11)
    rng = random.Random(10)
    for _ in range(10):
        leaves = tree.leaves_in_order()
        d.batch_set_leaf_values(
            [(l.nid, rng.randint(0, 256)) for l in rng.sample(leaves, 3)]
        )
        assert d.value() == tree.evaluate()


def test_grow_then_prune_roundtrip():
    tree, d = make(50, seed=12)
    before = d.value()
    leaf = tree.leaves_in_order()[10]
    old_value = leaf.value
    created = d.batch_grow([(leaf.nid, add_op(), 3, 4)])
    assert d.value() == tree.evaluate()
    d.batch_prune([(leaf.nid, old_value)])
    assert d.value() == before
    d.check_consistency()

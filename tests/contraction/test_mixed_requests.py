"""The §1.3 heterogeneous-batch interface."""

import random

import pytest

from repro.algebra.rings import INTEGER
from repro.contraction.dynamic import DynamicTreeContraction
from repro.errors import RequestError
from repro.pram.frames import SpanTracker
from repro.trees.builders import random_expression_tree
from repro.trees.nodes import add_op, mul_op


def make(n=60, seed=0):
    tree = random_expression_tree(INTEGER, n, seed=seed)
    return tree, DynamicTreeContraction(tree, seed=seed + 1)


def test_mixed_batch_returns_per_request_results():
    tree, d = make()
    leaves = [l.nid for l in tree.leaves_in_order()]
    internal = [n.nid for n in tree.nodes_preorder() if not n.is_leaf]
    reqs = [
        ("set_value", leaves[0], 9),
        ("grow", leaves[1], add_op(), 1, 2),
        ("query", tree.root.nid),
        ("set_op", internal[2], mul_op()),
    ]
    out = d.apply_requests(reqs)
    assert out[0] is None
    assert isinstance(out[1], tuple) and len(out[1]) == 2
    assert out[2] == tree.evaluate()  # query answered post-heal
    assert out[3] is None
    d.check_consistency()


def test_query_sees_the_healed_tree():
    tree, d = make(seed=1)
    leaf = tree.leaves_in_order()[3].nid
    (answer,) = [
        r
        for r in d.apply_requests(
            [("set_value", leaf, 1234), ("query", tree.root.nid)]
        )
        if r is not None
    ]
    assert answer == tree.evaluate()
    assert tree.node(leaf).value == 1234


def test_unknown_kind_rejected():
    tree, d = make(seed=2)
    with pytest.raises(RequestError):
        d.apply_requests([("frobnicate", 1)])


def test_mixed_batch_session_against_oracle():
    rng = random.Random(3)
    tree, d = make(40, seed=3)
    for _ in range(20):
        reqs = []
        leaves = [l.nid for l in tree.leaves_in_order()]
        reqs.append(("set_value", rng.choice(leaves), rng.randint(-4, 4)))
        reqs.append(("grow", rng.choice([x for x in leaves if x != reqs[0][1]]),
                     add_op(), 1, 1))
        reqs.append(("query", tree.root.nid))
        tracker = SpanTracker()
        out = d.apply_requests(reqs, tracker)
        assert out[2] == tree.evaluate()
        assert tracker.span > 0
        d.check_consistency()


def test_prune_and_grow_in_one_batch():
    tree, d = make(seed=4)
    cands = [
        n.nid
        for n in tree.nodes_preorder()
        if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
    ]
    target_leaf = next(
        l.nid
        for l in tree.leaves_in_order()
        if l.parent.nid != cands[0]
    )
    out = d.apply_requests(
        [("prune", cands[0], 5), ("grow", target_leaf, add_op(), 2, 3)]
    )
    assert out[0] is None and isinstance(out[1], tuple)
    assert d.value() == tree.evaluate()

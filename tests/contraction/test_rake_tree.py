"""Rake-tree construction and memoised replay."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.rings import INTEGER
from repro.contraction.rake_tree import build_trace
from repro.contraction.schedule import build_schedule
from repro.splitting.rbsts import RBSTS
from repro.trees.builders import random_expression_tree
from repro.trees.expr import ExprTree


def make(n, seed=0):
    tree = random_expression_tree(INTEGER, n, seed=seed)
    leaf_ids = [l.nid for l in tree.leaves_in_order()]
    pt = RBSTS(leaf_ids, seed=seed + 1)
    return tree, pt


@given(n=st.integers(1, 200), seed=st.integers(0, 30))
@settings(max_examples=40, deadline=None)
def test_trace_value_matches_oracle(n, seed):
    tree, pt = make(n, seed)
    trace = build_trace(tree, build_schedule(pt.root))
    assert trace.value == tree.evaluate()


def test_trace_records_one_removal_per_non_final_node():
    tree, pt = make(60, seed=1)
    trace = build_trace(tree, build_schedule(pt.root))
    assert len(trace.removal) == len(tree) - 1
    assert trace.final_tnode not in trace.removal


def test_rt_is_a_binary_tree_rooted_at_final_label():
    tree, pt = make(40, seed=2)
    trace = build_trace(tree, build_schedule(pt.root))
    # Walk down from the root; every base label must be reachable.
    seen = set()
    stack = [trace.root_rt]
    while stack:
        node = stack.pop()
        if node is None or id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend([node.left, node.right])
    for base in trace.base.values():
        assert id(base) in seen
    # One-to-one: leaves + inits + 2 per rake event.
    n_nodes = len(tree)
    assert len(seen) == n_nodes + 2 * len(trace.event_by_leaf)


def test_replay_without_changes_reuses_everything():
    tree, pt = make(80, seed=3)
    trace = build_trace(tree, build_schedule(pt.root))
    again = build_trace(tree, build_schedule(pt.root), old=trace)
    assert again.fresh_nodes == 0
    assert again.value == trace.value


def test_replay_after_leaf_change_rebuilds_only_wound():
    tree, pt = make(200, seed=4)
    trace = build_trace(tree, build_schedule(pt.root))
    leaf = tree.leaves_in_order()[37]
    tree.set_leaf_value(leaf.nid, 999)
    again = build_trace(tree, build_schedule(pt.root), old=trace)
    assert again.value == tree.evaluate()
    # Wound = one base + the RT path above it: far below total size.
    assert 0 < again.fresh_nodes < again.size() / 3


def test_replay_wound_scales_with_u_not_n():
    rng = random.Random(5)
    wounds = []
    for n in (256, 1024):
        tree, pt = make(n, seed=5)
        trace = build_trace(tree, build_schedule(pt.root))
        leaves = tree.leaves_in_order()
        for leaf in rng.sample(leaves, 4):
            tree.set_leaf_value(leaf.nid, 123)
        again = build_trace(tree, build_schedule(pt.root), old=trace)
        wounds.append(again.fresh_nodes)
        assert again.value == tree.evaluate()
    # 4x larger tree: wound grows like log n, not n.
    assert wounds[1] <= wounds[0] + 60


def test_out_of_sync_schedule_detected():
    tree, pt = make(30, seed=6)
    other_tree, _ = make(40, seed=7)
    from repro.errors import TreeStructureError

    with pytest.raises((TreeStructureError, KeyError)):
        build_trace(other_tree, build_schedule(pt.root))


def test_single_leaf_trace():
    tree = ExprTree(INTEGER, root_value=9)
    pt = RBSTS([tree.root.nid])
    trace = build_trace(tree, build_schedule(pt.root))
    assert trace.value == 9
    assert trace.final_pos == tree.root.nid

"""Dynamic contraction is ring-agnostic: the §4.2 machinery needs only
a commutative semiring, so boolean circuits and tropical (min,+)
expressions run through the identical code path."""

import random

import pytest

from repro.algebra.rings import BOOLEAN, FLOAT, tropical_semiring
from repro.contraction.dynamic import DynamicTreeContraction
from repro.trees.builders import random_tree
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op, mul_op


def test_boolean_circuit_dynamic():
    """AND/OR circuit: add = OR, mul = AND."""
    rng = random.Random(0)
    tree = random_tree(
        BOOLEAN,
        64,
        rng,
        values=lambda r: r.random() < 0.5,
        ops=lambda r: mul_op() if r.random() < 0.5 else add_op(),
    )
    engine = DynamicTreeContraction(tree, seed=1)
    for _ in range(20):
        leaves = [l.nid for l in tree.leaves_in_order()]
        engine.batch_set_leaf_values(
            [(nid, rng.random() < 0.5) for nid in rng.sample(leaves, 4)]
        )
        assert engine.value() == tree.evaluate()


def test_boolean_op_flip_gates():
    tree = ExprTree(BOOLEAN, root_value=False)
    l, r = tree.grow_leaf(tree.root.nid, mul_op(), True, False)  # AND
    engine = DynamicTreeContraction(tree, seed=2)
    assert engine.value() is False or engine.value() == False  # noqa: E712
    engine.batch_set_ops([(tree.root.nid, add_op())])  # OR
    assert engine.value() == True  # noqa: E712


def test_tropical_shortest_path_tree():
    """Tropical (min,+): add = min, mul = +.  An expression over this
    semiring computes a min-cost combination — dynamically updatable."""
    trop = tropical_semiring()
    rng = random.Random(3)
    tree = random_tree(
        trop,
        48,
        rng,
        values=lambda r: float(r.randint(0, 20)),
        ops=lambda r: mul_op() if r.random() < 0.4 else add_op(),
    )
    engine = DynamicTreeContraction(tree, seed=4)
    assert engine.value() == tree.evaluate()
    for _ in range(15):
        leaves = [l.nid for l in tree.leaves_in_order()]
        engine.batch_set_leaf_values(
            [(nid, float(rng.randint(0, 20))) for nid in rng.sample(leaves, 3)]
        )
        assert engine.value() == tree.evaluate()


def test_tropical_infinity_values():
    """+inf (the tropical zero) must flow through rakes unharmed."""
    trop = tropical_semiring()
    tree = ExprTree(trop, root_value=0.0)
    l, r = tree.grow_leaf(tree.root.nid, add_op(), float("inf"), 5.0)  # min
    engine = DynamicTreeContraction(tree, seed=5)
    assert engine.value() == 5.0
    engine.batch_set_leaf_values([(r, float("inf"))])
    assert engine.value() == float("inf")


def test_float_ring_with_tolerant_replay():
    """FLOAT's tolerant equality governs base-label reuse in replay."""
    rng = random.Random(6)
    tree = random_tree(
        FLOAT,
        40,
        rng,
        values=lambda r: round(r.uniform(-2, 2), 3),
        ops=lambda r: add_op() if r.random() < 0.8 else mul_op(),
    )
    engine = DynamicTreeContraction(tree, seed=7)
    for _ in range(10):
        leaves = [l.nid for l in tree.leaves_in_order()]
        engine.batch_grow(
            [(rng.choice(leaves), add_op(), 0.25, -0.5)]
        )
        assert FLOAT.eq(engine.value(), tree.evaluate())

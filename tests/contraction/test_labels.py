"""The §4.2 label rules against direct evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.algebra.rings import INTEGER
from repro.contraction.labels import (
    apply_label,
    compress_label,
    init_label,
    leaf_label,
    rake_label,
)
from repro.trees.nodes import add_op, mul_op

ints = st.integers(-30, 30)


def test_leaf_and_init_forms():
    assert leaf_label(INTEGER, 7) == (0, 7)
    assert init_label(INTEGER) == (1, 0)


@given(beta=ints, c=ints, d=ints, x=ints)
def test_rake_add_preserves_passed_value(beta, c, d, x):
    """Raking leaf β into +-parent (C,D): for any remaining subtree
    value x, C*(β + x) + D must equal newlabel(x)."""
    new = rake_label(INTEGER, add_op(), leaf_label(INTEGER, beta), (c, d))
    assert apply_label(INTEGER, new, x) == c * (beta + x) + d


@given(beta=ints, c=ints, d=ints, x=ints, k=ints)
def test_rake_add_with_const(beta, c, d, x, k):
    new = rake_label(INTEGER, add_op(const=k), leaf_label(INTEGER, beta), (c, d))
    assert apply_label(INTEGER, new, x) == c * (beta + x + k) + d


@given(beta=ints, c=ints, d=ints, x=ints)
def test_rake_mul_preserves_passed_value(beta, c, d, x):
    new = rake_label(INTEGER, mul_op(), leaf_label(INTEGER, beta), (c, d))
    assert apply_label(INTEGER, new, x) == c * (beta * x) + d


@given(a=ints, b=ints, c=ints, d=ints, x=ints)
def test_compress_is_composition(a, b, c, d, x):
    new = compress_label(INTEGER, (a, b), (c, d))
    assert apply_label(INTEGER, new, x) == a * (c * x + d) + b


@given(
    l1=st.tuples(ints, ints),
    l2=st.tuples(ints, ints),
    l3=st.tuples(ints, ints),
)
def test_compress_associative(l1, l2, l3):
    left = compress_label(INTEGER, compress_label(INTEGER, l1, l2), l3)
    right = compress_label(INTEGER, l1, compress_label(INTEGER, l2, l3))
    assert left == right


def test_unknown_op_kind_rejected():
    from repro.trees.nodes import Op

    with pytest.raises(ValueError):
        rake_label(INTEGER, Op("xor"), (0, 1), (1, 0))

"""Theorem 4.2's proof obligation: wound re-evaluation by contraction
over affine maps agrees with bottom-up label recomputation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.rings import INTEGER, modular_ring
from repro.contraction.evaluator import (
    collect_wound,
    heal_bottom_up,
    reevaluate_by_contraction,
)
from repro.contraction.rake_tree import build_trace
from repro.contraction.schedule import build_schedule
from repro.pram.frames import SpanTracker
from repro.splitting.rbsts import RBSTS
from repro.trees.builders import random_expression_tree


def wounded_trace(n, seed, k):
    """Build a trace, dirty k leaf labels, return (trace, dirty RTs)."""
    tree = random_expression_tree(INTEGER, n, seed=seed)
    pt = RBSTS([l.nid for l in tree.leaves_in_order()], seed=seed + 1)
    trace = build_trace(tree, build_schedule(pt.root))
    rng = random.Random(seed)
    dirty = []
    for leaf in rng.sample(tree.leaves_in_order(), min(k, n)):
        value = rng.randint(-9, 9)
        tree.set_leaf_value(leaf.nid, value)
        base = trace.base[leaf.nid]
        base.label = (0, value)
        dirty.append(base)
    return tree, trace, dirty


def test_collect_wound_is_rootward_closure_in_topo_order():
    tree, trace, dirty = wounded_trace(100, 0, 3)
    wound = collect_wound(dirty)
    ids = {id(w) for w in wound}
    for node in wound:
        if node.parent is not None:
            assert id(node.parent) in ids
    rids = [w.rid for w in wound]
    assert rids == sorted(rids)
    assert id(trace.root_rt) in ids


@given(n=st.integers(2, 150), seed=st.integers(0, 25), k=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_bottom_up_heal_restores_correct_value(n, seed, k):
    tree, trace, dirty = wounded_trace(n, seed, k)
    heal_bottom_up(INTEGER, collect_wound(dirty))
    assert trace.value == tree.evaluate()


@given(n=st.integers(2, 150), seed=st.integers(0, 25), k=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_affine_contraction_agrees_with_bottom_up(n, seed, k):
    """The Theorem 4.2 equivalence, label-for-label."""
    tree, trace, dirty = wounded_trace(n, seed, k)
    wound = collect_wound(dirty)
    by_contraction = reevaluate_by_contraction(INTEGER, wound)
    heal_bottom_up(INTEGER, wound)
    for node in wound:
        assert by_contraction[id(node)] == node.label, node.kind


def test_affine_contraction_does_not_mutate():
    tree, trace, dirty = wounded_trace(80, 3, 2)
    wound = collect_wound(dirty)
    before = [(w.rid, w.label) for w in wound]
    reevaluate_by_contraction(INTEGER, wound)
    assert [(w.rid, w.label) for w in wound] == before


def test_affine_contraction_span_logarithmic():
    tree, trace, dirty = wounded_trace(2000, 4, 4)
    wound = collect_wound(dirty)
    tracker = SpanTracker()
    reevaluate_by_contraction(INTEGER, wound, tracker)
    import math

    assert tracker.span <= 6 * math.log2(len(wound) + 2) + 8


def test_heal_charges_logarithmic_span():
    tree, trace, dirty = wounded_trace(500, 5, 3)
    wound = collect_wound(dirty)
    tracker = SpanTracker()
    heal_bottom_up(INTEGER, wound, tracker)
    import math

    assert tracker.work >= len(wound)
    assert tracker.span <= 2 * math.ceil(math.log2(len(wound) + 2)) + 2


def test_empty_wound_is_noop():
    heal_bottom_up(INTEGER, [])
    assert reevaluate_by_contraction(INTEGER, []) == {}

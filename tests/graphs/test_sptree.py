"""SP decomposition tree structure and materialisation."""

import pytest

from repro.errors import NotALeafError, TreeStructureError, UnknownNodeError
from repro.graphs.builders import random_sp_tree
from repro.graphs.explicit import materialize
from repro.graphs.sptree import PARALLEL, SERIES, SPTree


def test_single_edge_graph():
    t = SPTree(weight=5)
    n, s, u, edges = materialize(t)
    assert n == 2 and (s, u) == (0, 1)
    assert edges == [(0, 1, t.root.nid, 5)]
    t.check()


def test_subdivide_creates_series_vertex():
    t = SPTree(weight=1)
    a, b = t.subdivide(t.root.nid, 2, 3)
    assert t.root.kind == SERIES
    n, s, u, edges = materialize(t)
    assert n == 3  # one internal vertex appeared
    assert t.n_vertices() == 3
    weights = sorted(w for *_, w in edges)
    assert weights == [2, 3]
    t.check()


def test_duplicate_keeps_vertices():
    t = SPTree(weight=1)
    t.duplicate(t.root.nid, 2, 3)
    assert t.root.kind == PARALLEL
    n, *_ , edges = materialize(t)
    assert n == 2 and len(edges) == 2
    assert t.n_vertices() == 2
    t.check()


def test_dissolve_roundtrip():
    t = SPTree(weight=1)
    a, b = t.subdivide(t.root.nid, 2, 3)
    removed = t.dissolve(t.root.nid, 7)
    assert set(removed) == {a, b}
    assert t.root.is_leaf and t.root.weight == 7
    assert a not in t and b not in t
    t.check()


def test_grow_rejects_internal_and_dissolve_rejects_deep():
    t = SPTree(weight=1)
    t.subdivide(t.root.nid, 1, 1)
    with pytest.raises(NotALeafError):
        t.subdivide(t.root.nid, 1, 1)
    left = t.root.left
    t.duplicate(left.nid, 1, 1)
    with pytest.raises(TreeStructureError):
        t.dissolve(t.root.nid, 1)  # children not both edges
    with pytest.raises(TreeStructureError):
        t.dissolve(left.left.nid, 1)  # a leaf
    with pytest.raises(UnknownNodeError):
        t.set_weight(31337, 1)


def test_random_sp_tree_shape_counts():
    t = random_sp_tree(50, seed=1)
    t.check()
    assert t.n_edges() == 50
    n, s, u, edges = materialize(t)
    assert len(edges) == 50
    series = sum(
        1 for x in t.nodes_preorder() if not x.is_leaf and x.kind == SERIES
    )
    assert n == 2 + series


def test_materialized_graph_is_connected_between_terminals():
    import networkx as nx

    from repro.graphs.explicit import to_networkx

    t = random_sp_tree(30, seed=2)
    g = to_networkx(t)
    s, u = g.graph["terminals"]
    assert nx.has_path(g, s, u)
    # SP graphs: |E| = 30, vertices = 2 + series count <= 32
    assert g.number_of_edges() == 30

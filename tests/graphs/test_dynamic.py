"""Dynamic maintenance of SP properties under concurrent batches."""

import random

import pytest

from repro.errors import RequestError
from repro.graphs.builders import random_sp_tree
from repro.graphs.dynamic import DynamicSPProperty
from repro.graphs.problems import (
    count_colorings,
    effective_resistance,
    maximum_matching,
    minimum_vertex_cover,
)
from repro.pram.frames import SpanTracker


def test_answer_is_exactly_maintained_under_reweight():
    tree = random_sp_tree(
        20, seed=0, weights=lambda r: round(r.uniform(1, 4), 2)
    )
    prop = DynamicSPProperty(tree, effective_resistance())
    rng = random.Random(0)
    for _ in range(10):
        edges = tree.edges()
        updates = [
            (e.nid, round(rng.uniform(1, 4), 2)) for e in rng.sample(edges, 3)
        ]
        prop.batch_reweight(updates)
        prop.check_consistency()


def test_subdivide_duplicate_dissolve_cycle():
    tree = random_sp_tree(10, seed=1)
    prop = DynamicSPProperty(tree, minimum_vertex_cover())
    before = prop.answer()
    edge = tree.edges()[0]
    created = prop.batch_subdivide([(edge.nid, 1, 1)])
    prop.check_consistency()
    prop.batch_dissolve([(edge.nid, 1)])
    prop.check_consistency()
    assert prop.answer() == before


def test_mixed_session_matches_fresh_recompute():
    rng = random.Random(2)
    tree = random_sp_tree(8, seed=2)
    props = [
        DynamicSPProperty(tree, maximum_matching()),
        DynamicSPProperty(tree, count_colorings(3)),
    ]
    for step in range(30):
        op = rng.choice(["reweight", "subdivide", "duplicate", "dissolve"])
        edges = tree.edges()
        if op == "reweight":
            reqs = [(e.nid, rng.randint(1, 5)) for e in rng.sample(edges, 2)]
            for p in props:
                # only the first may mutate the tree
                pass
            props[0].batch_reweight(reqs)
            props[1]._heal([eid for eid, _ in reqs], None)
        elif op in ("subdivide", "duplicate"):
            e = rng.choice(edges)
            reqs = [(e.nid, rng.randint(1, 5), rng.randint(1, 5))]
            if op == "subdivide":
                created = props[0].batch_subdivide(reqs)
            else:
                created = props[0].batch_duplicate(reqs)
            for cid_pair in created:
                for cid in cid_pair:
                    props[1].table[cid] = props[1].problem.leaf(
                        tree.node(cid).weight
                    )
            props[1]._heal([e.nid], None)
        else:
            cands = [
                x.nid
                for x in tree.nodes_preorder()
                if not x.is_leaf and x.left.is_leaf and x.right.is_leaf
            ]
            if tree.n_edges() > 4 and cands:
                nid = rng.choice(cands)
                removed = (tree.node(nid).left.nid, tree.node(nid).right.nid)
                props[0].batch_dissolve([(nid, rng.randint(1, 5))])
                for rid in removed:
                    props[1].table.pop(rid, None)
                props[1]._heal([nid], None)
        for p in props:
            p.check_consistency()


def test_wound_reported_and_tracker_charged():
    tree = random_sp_tree(64, seed=3)
    prop = DynamicSPProperty(tree, minimum_vertex_cover())
    edge = tree.edges()[10]
    tracker = SpanTracker()
    wound = prop.batch_reweight([(edge.nid, 9)], tracker)
    assert wound == prop.last_wound > 0
    assert tracker.span >= 1 and tracker.work >= wound


def test_duplicate_requests_rejected():
    tree = random_sp_tree(6, seed=4)
    prop = DynamicSPProperty(tree, minimum_vertex_cover())
    e = tree.edges()[0].nid
    with pytest.raises(RequestError):
        prop.batch_subdivide([(e, 1, 1), (e, 2, 2)])


def test_component_table_access():
    tree = random_sp_tree(6, seed=5)
    prop = DynamicSPProperty(tree, count_colorings(2))
    for node in tree.nodes_preorder():
        assert prop.component_table(node.nid) is not None

"""SP dynamic programs against brute-force / networkx / numpy oracles."""

import itertools
import random

import networkx as nx
import numpy as np
import pytest

from repro.graphs.builders import random_sp_tree
from repro.graphs.dynamic import DynamicSPProperty
from repro.graphs.explicit import materialize
from repro.graphs.problems import (
    count_colorings,
    effective_resistance,
    maximum_independent_set,
    maximum_matching,
    minimum_vertex_cover,
)

SMALL = [random_sp_tree(k, seed=s) for k, s in
         [(1, 0), (2, 1), (3, 2), (5, 3), (7, 4), (9, 5), (11, 6), (12, 7)]]


def brute_force_cover(n, edges):
    best = n
    for bits in range(1 << n):
        cover = {v for v in range(n) if bits >> v & 1}
        if all(u in cover or v in cover for u, v, *_ in edges):
            best = min(best, len(cover))
    return best


def brute_force_independent(n, edges):
    best = 0
    for bits in range(1 << n):
        chosen = {v for v in range(n) if bits >> v & 1}
        if all(not (u in chosen and v in chosen) for u, v, *_ in edges):
            best = max(best, len(chosen))
    return best


def brute_force_colorings(n, edges, k):
    total = 0
    for colors in itertools.product(range(k), repeat=n):
        if all(colors[u] != colors[v] for u, v, *_ in edges):
            total += 1
    return total


def brute_force_matching(n, edges):
    """Max cardinality matching over edge subsets (small graphs)."""
    best = 0
    m = len(edges)
    for bits in range(1 << m):
        used = [e for i, e in enumerate(edges) if bits >> i & 1]
        vertices = [v for u, w, *_ in used for v in (u, w)]
        if len(vertices) == len(set(vertices)):
            best = max(best, len(used))
    return best


@pytest.mark.parametrize("tree", SMALL, ids=lambda t: f"m{t.n_edges()}")
def test_minimum_vertex_cover(tree):
    n, s, t, edges = materialize(tree)
    got = DynamicSPProperty(tree, minimum_vertex_cover()).answer()
    assert got == brute_force_cover(n, edges)


@pytest.mark.parametrize("tree", SMALL, ids=lambda t: f"m{t.n_edges()}")
def test_maximum_independent_set(tree):
    n, s, t, edges = materialize(tree)
    got = DynamicSPProperty(tree, maximum_independent_set()).answer()
    assert got == brute_force_independent(n, edges)


@pytest.mark.parametrize("tree", SMALL, ids=lambda t: f"m{t.n_edges()}")
@pytest.mark.parametrize("k", [2, 3])
def test_count_colorings(tree, k):
    n, s, t, edges = materialize(tree)
    got = DynamicSPProperty(tree, count_colorings(k)).answer()
    assert got == brute_force_colorings(n, edges, k)


@pytest.mark.parametrize("tree", SMALL, ids=lambda t: f"m{t.n_edges()}")
def test_maximum_cardinality_matching(tree):
    # cardinality: weight-1 edges
    for e in tree.edges():
        tree.set_weight(e.nid, 1)
    n, s, t, edges = materialize(tree)
    got = DynamicSPProperty(tree, maximum_matching()).answer()
    assert got == brute_force_matching(n, edges)


def test_maximum_weight_matching_vs_networkx():
    rng = random.Random(9)
    for trial in range(6):
        tree = random_sp_tree(10, seed=100 + trial)
        n, s, t, edges = materialize(tree)
        got = DynamicSPProperty(tree, maximum_matching()).answer()
        # collapse parallel edges to the max weight (a matching never
        # uses two edges sharing endpoints)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for u, v, _eid, w in edges:
            if g.has_edge(u, v):
                g[u][v]["weight"] = max(g[u][v]["weight"], w)
            else:
                g.add_edge(u, v, weight=w)
        m = nx.max_weight_matching(g)
        want = sum(g[u][v]["weight"] for u, v in m)
        assert got == want, trial


def test_effective_resistance_vs_laplacian():
    """Oracle: effective resistance from the graph Laplacian's
    pseudo-inverse (numpy), per the standard identity."""
    for trial in range(6):
        tree = random_sp_tree(
            12, seed=trial, weights=lambda r: round(r.uniform(0.5, 5.0), 3)
        )
        n, s, t, edges = materialize(tree)
        got = DynamicSPProperty(tree, effective_resistance()).answer()
        L = np.zeros((n, n))
        for u, v, _eid, w in edges:
            g = 1.0 / w
            L[u, u] += g
            L[v, v] += g
            L[u, v] -= g
            L[v, u] -= g
        Li = np.linalg.pinv(L)
        want = Li[s, s] + Li[t, t] - 2 * Li[s, t]
        assert got == pytest.approx(want, rel=1e-9), trial


def test_resistance_edge_cases():
    prob = effective_resistance()
    assert prob.parallel(0.0, 5.0) == 0.0
    assert prob.parallel(float("inf"), 5.0) == 5.0
    assert prob.series(1.5, 2.5) == 4.0
    with pytest.raises(ValueError):
        prob.leaf(-1.0)


def test_colorings_k1_and_validation():
    with pytest.raises(ValueError):
        count_colorings(0)
    tree = random_sp_tree(4, seed=3)
    n, s, t, edges = materialize(tree)
    got = DynamicSPProperty(tree, count_colorings(1)).answer()
    assert got == brute_force_colorings(n, edges, 1)  # zero (edges exist)

"""SP recognition: round trips, invariance of maintained properties,
and rejection of non-SP graphs."""

import random

import pytest

from repro.graphs.builders import random_sp_tree
from repro.graphs.dynamic import DynamicSPProperty
from repro.graphs.explicit import materialize
from repro.graphs.problems import (
    count_colorings,
    effective_resistance,
    maximum_matching,
    minimum_vertex_cover,
)
from repro.graphs.recognize import (
    NotSeriesParallel,
    recognize,
    spec_of_tree,
    tree_from_spec,
)


def test_single_edge():
    spec = recognize([(0, 1, 7)], 0, 1)
    assert spec == ("edge", 7)
    tree = tree_from_spec(spec)
    assert tree.root.is_leaf and tree.root.weight == 7


def test_triangle_with_terminals_is_sp():
    # s - m - t plus the direct edge: series(a,b) parallel c.
    spec = recognize([(0, 2, 1), (2, 1, 2), (0, 1, 3)], 0, 1)
    tree = tree_from_spec(spec)
    n, s, t, edges = materialize(tree)
    assert len(edges) == 3 and n == 3


def test_k4_rejected():
    k4 = [
        (0, 1, 1),
        (0, 2, 1),
        (0, 3, 1),
        (1, 2, 1),
        (1, 3, 1),
        (2, 3, 1),
    ]
    with pytest.raises(NotSeriesParallel):
        recognize(k4, 0, 1)


def test_wrong_terminals_rejected():
    # A path 0-1-2 is SP for terminals (0, 2), not for (0, 1): vertex 2
    # would dangle.
    with pytest.raises(NotSeriesParallel):
        recognize([(0, 1, 1), (1, 2, 1)], 0, 1)
    assert recognize([(0, 1, 1), (1, 2, 1)], 0, 2)[0] == "series"


def test_malformed_inputs():
    with pytest.raises(ValueError):
        recognize([], 0, 1)
    with pytest.raises(ValueError):
        recognize([(0, 0, 1)], 0, 1)
    with pytest.raises(ValueError):
        recognize([(0, 1, 1)], 0, 0)
    with pytest.raises(ValueError):
        recognize([(0, 1, 1)], 0, 9)


@pytest.mark.parametrize("seed", range(8))
def test_round_trip_preserves_every_property(seed):
    """random tree -> explicit graph -> recognize -> rebuilt tree must
    agree on all maintained §6 properties (the recognizer may produce a
    different but equivalent decomposition)."""
    original = random_sp_tree(
        14, seed=seed, weights=lambda r: r.randint(1, 6)
    )
    n, s, t, edges = materialize(original)
    spec = recognize([(u, v, w) for u, v, _eid, w in edges], s, t)
    rebuilt = tree_from_spec(spec)
    for problem in (
        maximum_matching(),
        minimum_vertex_cover(),
        count_colorings(3),
    ):
        a = DynamicSPProperty(original, problem).answer()
        b = DynamicSPProperty(rebuilt, problem).answer()
        assert a == b, (seed, problem.name)
    ra = DynamicSPProperty(original, effective_resistance()).answer()
    rb = DynamicSPProperty(rebuilt, effective_resistance()).answer()
    assert ra == pytest.approx(rb, rel=1e-9)


def test_spec_of_tree_inverse():
    tree = random_sp_tree(10, seed=3)
    spec = spec_of_tree(tree)
    clone = tree_from_spec(spec)
    assert spec_of_tree(clone) == spec
    a = DynamicSPProperty(tree, minimum_vertex_cover()).answer()
    b = DynamicSPProperty(clone, minimum_vertex_cover()).answer()
    assert a == b

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.algebra.rings import BOOLEAN, INTEGER, modular_ring, tropical_semiring


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


RINGS = {
    "integer": INTEGER,
    "mod97": modular_ring(97),
    "boolean": BOOLEAN,
    "tropical": tropical_semiring(),
}


def ring_elements(ring_name: str):
    """A hypothesis strategy producing elements of the named ring."""
    if ring_name == "integer":
        return st.integers(min_value=-50, max_value=50)
    if ring_name == "mod97":
        return st.integers(min_value=0, max_value=96)
    if ring_name == "boolean":
        return st.booleans()
    if ring_name == "tropical":
        return st.one_of(
            st.just(float("inf")),
            st.integers(min_value=-20, max_value=20).map(float),
        )
    raise KeyError(ring_name)

"""Scrub-and-repair of at-rest damage: metadata recompute, §2
randomized rebuild of the smallest damaged subtree, and master-RNG
isolation of the repair path."""

from __future__ import annotations

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import TreeStructureError
from repro.listprefix.structure import IncrementalListPrefix
from repro.resilience.faults import plant_link_damage, plant_metadata_damage
from repro.resilience.scrub import repair, scrub

BACKENDS = ["reference", "flat"]
N = 64


def make(backend, seed=3, n=N):
    return IncrementalListPrefix(
        sum_monoid(INTEGER), range(n), seed=seed, backend=backend
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_scrub_clean_on_fresh_structure(backend):
    report = scrub(make(backend).tree)
    assert report.clean
    assert report.nodes_scanned >= 2 * N - 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_metadata_damage_is_found_and_repaired_in_place(backend):
    lp = make(backend)
    tree = lp.tree
    planted = plant_metadata_damage(tree, seed=11, sites=2)
    assert planted
    with pytest.raises((TreeStructureError, AssertionError)):
        tree.check_invariants()

    report = scrub(tree)
    assert not report.clean
    assert report.by_severity("meta"), "metadata damage must scan as 'meta'"

    rep = repair(tree, report, repair_seed=0)
    assert rep.sites >= 1 and rep.recomputed >= 1
    assert rep.rebuilt_leaves == 0, "metadata repair must not rebuild"
    tree.check_invariants()
    assert lp.values() == list(range(N))
    assert lp.total() == sum(range(N))


@pytest.mark.parametrize("backend", BACKENDS)
def test_link_damage_rebuilds_only_the_damaged_subtree(backend):
    lp = make(backend)
    tree = lp.tree
    desc = plant_link_damage(tree, seed=4)
    assert desc
    with pytest.raises((TreeStructureError, AssertionError)):
        tree.check_invariants()

    rep = repair(tree, repair_seed=1)
    assert rep.rebuilt, "a broken link needs a structural rebuild"
    # Theorem 2.2's locality: the rebuild mass is the damaged subtree,
    # not the whole structure.
    assert 0 < rep.rebuilt_leaves < N
    tree.check_invariants()
    assert lp.values() == list(range(N))
    assert lp.total() == sum(range(N))


@pytest.mark.parametrize("backend", BACKENDS)
def test_repair_preserves_the_master_rng_stream(backend):
    """Rebuild coins come from an isolated repair RNG: the master
    stream a fault-free twin consumes must be untouched, or RNG-parity
    audits would blame recovery for divergence."""
    lp = make(backend)
    tree = lp.tree
    before = tree._rng.getstate()
    plant_link_damage(tree, seed=4)
    rep = repair(tree, repair_seed=2)
    assert rep.rebuilt
    assert tree._rng.getstate() == before


@pytest.mark.parametrize("backend", BACKENDS)
def test_repair_on_clean_tree_is_a_verified_no_op(backend):
    tree = make(backend).tree
    rep = repair(tree)
    assert rep.sites == 0 and rep.recomputed == 0 and not rep.rebuilt


@pytest.mark.parametrize("backend", BACKENDS)
def test_repair_determinism(backend):
    """Same damage + same repair_seed => identical repaired shape."""
    shapes = []
    for _ in range(2):
        lp = make(backend)
        plant_link_damage(lp.tree, seed=9)
        repair(lp.tree, repair_seed=5)
        lp.tree.check_invariants()
        shapes.append(
            [(h.depth, h.item) for h in lp.handles()]
        )
    assert shapes[0] == shapes[1]

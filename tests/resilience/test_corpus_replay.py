"""Replay of the pinned ``fault-recovery-*`` corpus entries (schema
``repro-resilience-corpus/1``): each must still *fire* its fault family
and still land in its recorded outcome class — a recovery regression
can never silently degenerate into a fault-free no-op."""

from __future__ import annotations

import json
import os

from repro.resilience.corpus import (
    RESILIENCE_SCHEMA,
    replay_resilience_corpus,
    resilience_corpus_paths,
)

HERE = os.path.dirname(os.path.abspath(__file__))
CORPUS = os.path.join(HERE, "..", "corpus")

# One pinned reproducer per fault family (satellite requirement).
REQUIRED_FAMILIES = {"dead-processor", "torn-write", "bit-flip", "hang"}


def test_corpus_carries_one_entry_per_fault_family():
    paths = resilience_corpus_paths(CORPUS)
    assert len(paths) >= 4
    for p in paths:
        with open(p) as fh:
            data = json.load(fh)
        assert data["schema"] == RESILIENCE_SCHEMA
        assert {"program", "plan", "policy", "expect"} <= data.keys()


def test_replay_recovers_oracle_identical_with_faults_fired():
    results = replay_resilience_corpus(CORPUS)
    assert len(results) >= 4
    seen_families = set()
    for path, report, expect in results:
        name = os.path.basename(path)
        assert report.ok, f"{name}: {report.failure}"
        assert report.outcome == expect["outcome"], (
            f"{name}: outcome {report.outcome!r} != pinned "
            f"{expect['outcome']!r}"
        )
        sub = expect["fault_substring"]
        assert any(sub in f for f in report.faults), (
            f"{name}: pinned fault {sub!r} no longer fires "
            f"(faults: {report.faults})"
        )
        assert len(report.faults) >= expect["min_faults"], name
        seen_families |= {k for k in REQUIRED_FAMILIES if k == sub}
    assert seen_families == REQUIRED_FAMILIES


def test_replay_is_deterministic():
    once = replay_resilience_corpus(CORPUS)
    twice = replay_resilience_corpus(CORPUS)
    for (p1, r1, _), (p2, r2, _) in zip(once, twice):
        assert p1 == p2
        assert r1.outcome == r2.outcome
        assert r1.answers == r2.answers
        assert r1.faults == r2.faults

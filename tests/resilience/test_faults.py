"""Seeded fault injection: determinism, firing semantics, and the
detectability of every machine/memory fault class on the supervised
PRAM workload."""

from __future__ import annotations

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import MachineHangError
from repro.listprefix.structure import IncrementalListPrefix
from repro.resilience.faults import (
    MACHINE_FAULT_KINDS,
    MEMORY_FAULT_KINDS,
    TREE_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    corrupt_journaled_cell,
)
from repro.resilience.harness import pram_sum

DETAIL = {"pick": 0, "bit": 0, "at_step": 2, "at_commit": 1, "victim": 1, "nth": 1}


# ---------------------------------------------------------------------------
# FaultPlan determinism
# ---------------------------------------------------------------------------


def test_fault_plan_is_deterministic():
    a = FaultPlan(7, rate=0.5)
    b = FaultPlan(7, rate=0.5)
    draws_a = [a.draw(i) for i in range(64)]
    draws_b = [b.draw(i) for i in range(64)]
    assert draws_a == draws_b
    fired = [d for d in draws_a if d is not None]
    assert fired, "rate 0.5 over 64 ops must schedule at least one fault"
    # A different seed reshuffles the schedule.
    other = [FaultPlan(8, rate=0.5).draw(i) for i in range(64)]
    assert draws_a != other


def test_fault_plan_rate_zero_schedules_nothing():
    plan = FaultPlan(3, rate=0.0)
    assert all(plan.draw(i) is None for i in range(128))


def test_fault_plan_respects_kind_restriction():
    plan = FaultPlan(11, rate=1.0)
    for i in range(32):
        ev = plan.draw(i, kinds=TREE_FAULT_KINDS)
        assert ev is not None and ev.kind in TREE_FAULT_KINDS


# ---------------------------------------------------------------------------
# firing semantics
# ---------------------------------------------------------------------------


def test_transient_fires_on_first_attempt_of_first_rung_only():
    ev = FaultEvent("bit-flip", 0, "transient", dict(DETAIL))
    assert ev.should_fire(attempt=0, rung_index=0)
    assert not ev.should_fire(attempt=1, rung_index=0)
    assert not ev.should_fire(attempt=0, rung_index=1)


def test_sticky_fires_on_every_attempt_of_the_first_rung():
    ev = FaultEvent("bit-flip", 0, "sticky", dict(DETAIL))
    for attempt in range(4):
        assert ev.should_fire(attempt=attempt, rung_index=0)
    assert not ev.should_fire(attempt=0, rung_index=1)


# ---------------------------------------------------------------------------
# machine/memory faults are detectable on the psum workload
# ---------------------------------------------------------------------------


def test_pram_sum_fault_free_matches_builtin():
    for n in (0, 1, 2, 3, 7, 16, 33):
        values = [((i * 37) % 101) - 50 for i in range(n)]
        assert pram_sum(values) == sum(values)


@pytest.mark.parametrize("kind", sorted(MACHINE_FAULT_KINDS + MEMORY_FAULT_KINDS))
def test_every_machine_and_memory_fault_is_detectable(kind):
    """Each fault class either starves the reduction (MachineHangError)
    or corrupts the answer (caught by the supervisor's verifier) — it
    can never silently produce the *right* sum while corrupting state."""
    values = list(range(10))
    ev = FaultEvent(kind, 0, "sticky", dict(DETAIL))
    try:
        got = pram_sum(values, event=ev)
    except MachineHangError as exc:
        assert exc.live > 0 and exc.max_steps > 0
        return
    assert got != sum(values), f"{kind} fired but the sum came out right"


def test_hang_fault_raises_machine_hang_error():
    ev = FaultEvent("hang", 0, "sticky", dict(DETAIL))
    with pytest.raises(MachineHangError):
        pram_sum(list(range(8)), event=ev)
    # ... and subclasses TimeoutError so host-level handling composes.
    assert issubclass(MachineHangError, TimeoutError)


# ---------------------------------------------------------------------------
# in-batch tree corruption stays journal-covered
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["reference", "flat"])
@pytest.mark.parametrize("kind", sorted(TREE_FAULT_KINDS))
def test_corrupt_journaled_cell_is_removed_by_rollback(backend, kind):
    monoid = sum_monoid(INTEGER)
    lp = IncrementalListPrefix(monoid, range(32), seed=5, backend=backend)
    tree = lp.tree
    before_total = lp.total()
    outer = tree._txn_begin()
    lp.batch_set([(lp.handle_at(p), v) for p, v in [(0, 9), (13, -4), (31, 7)]])
    ev = FaultEvent(kind, 0, "sticky", dict(DETAIL))
    desc = corrupt_journaled_cell(tree, ev)
    assert desc is not None, "a fresh batch_set journal must offer a target"
    tree._txn_rollback(outer)
    tree.check_invariants()
    assert lp.total() == before_total
    assert lp.values() == list(range(32))


def test_corrupt_without_open_journal_fizzles():
    monoid = sum_monoid(INTEGER)
    lp = IncrementalListPrefix(monoid, range(8), seed=0, backend="flat")
    ev = FaultEvent("bit-flip", 0, "sticky", dict(DETAIL))
    assert corrupt_journaled_cell(lp.tree, ev) is None
    lp.tree.check_invariants()

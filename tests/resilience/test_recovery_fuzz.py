"""The end-to-end recovery property (ISSUE acceptance): under seeded
fault injection every program run classifies as

  (a) clean     — oracle-identical answers AND master-RNG parity,
  (b) degraded  — recorded ladder demotion, oracle-identical answers,
  (c) aborted   — pre-op state restored bit-for-bit, skipped by the
                   oracle,

with at least one witness of each class across the seed range."""

from __future__ import annotations

import pytest

from repro.resilience.fuzz import fuzz_one
from repro.resilience.harness import policy_for_seed, run_resilience_program
from repro.testing.generator import generate

SEEDS = range(60)
OPS = 40


@pytest.fixture(scope="module")
def reports():
    return {
        seed: fuzz_one(seed, OPS, save=False, verbose=False) for seed in SEEDS
    }


def test_every_seed_honours_the_recovery_contract(reports):
    bad = {s: r.failure for s, r in reports.items() if not r.ok}
    assert not bad, f"recovery contract violated: {bad}"


def test_all_three_outcome_classes_are_witnessed(reports):
    outcomes = {r.outcome for r in reports.values()}
    assert outcomes == {"clean", "degraded", "aborted"}


def test_clean_runs_include_fault_firing_witnesses(reports):
    """Outcome (a) must not be vacuous: at least one clean run had
    faults actually fire (transient, recovered with RNG parity)."""
    assert any(
        r.outcome == "clean" and r.faults for r in reports.values()
    ), "no clean run with fired faults — outcome (a) untested"


def test_aborted_runs_record_the_aborted_ops(reports):
    aborted = [r for r in reports.values() if r.outcome == "aborted"]
    assert aborted
    for r in aborted:
        assert r.aborted_ops, "aborted outcome without recorded op indices"


def test_degraded_runs_record_degradation_events(reports):
    degraded = [r for r in reports.values() if r.outcome == "degraded"]
    assert degraded
    for r in degraded:
        assert r.degradations


def test_reports_are_replayable(reports):
    """Same (seed, plan, policy) => identical outcome and answers —
    the fuzzer's failure artifacts are genuine reproducers."""
    seed = next(s for s, r in reports.items() if r.outcome == "degraded")
    again = fuzz_one(seed, OPS, save=False, verbose=False)
    first = reports[seed]
    assert again.outcome == first.outcome
    assert again.answers == first.answers
    assert again.final_values == first.final_values
    assert again.faults == first.faults


def test_fault_free_plan_is_always_clean():
    seq = generate("list", 12345, OPS, profile="faulty")
    report = run_resilience_program(
        seq, plan=None, policy=policy_for_seed(12345)
    )
    assert report.ok and report.outcome == "clean" and not report.faults

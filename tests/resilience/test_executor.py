"""The supervised executor: checkpointed retry, the degradation
ladder, abort semantics, and RNG parity of recovery."""

from __future__ import annotations

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import BatchValidationError, PositionError, RetryExhaustedError
from repro.resilience.executor import (
    DegradationEvent,
    ResiliencePolicy,
    ResilientListSession,
)
from repro.resilience.faults import FaultPlan

MONOID = sum_monoid(INTEGER)


def make(*, policy=None, plan=None, n=24, seed=0):
    return ResilientListSession(MONOID, range(n), seed=seed, policy=policy, plan=plan)


def drive(session):
    """A fixed op mix touching every mutating entry point."""
    session.batch_insert([(0, 100), (5, 200), (5, 300)])
    session.insert(2, -7)
    session.batch_set([(1, 11), (9, -2)])
    session.batch_delete([3, 0, 12])
    session.delete(1)


# ---------------------------------------------------------------------------
# transient faults: retry reconverges with the fault-free run
# ---------------------------------------------------------------------------


def test_transient_faults_recover_with_rng_parity():
    faulted = make(plan=FaultPlan(2, rate=1.0, sticky_rate=0.0))
    clean = make(plan=None)
    drive(faulted)
    drive(clean)
    assert faulted.stats["retries"] >= 1, "rate 1.0 must force retries"
    assert faulted.rung == "flat" and not faulted.events
    assert faulted.values() == clean.values()
    assert faulted.total() == clean.total()
    # Recovery consumed zero extra master-RNG coin flips.
    assert faulted.rng_state() == clean.rng_state()


def test_fault_free_supervision_is_invisible():
    supervised = make(plan=FaultPlan(0, rate=0.0))
    clean = make(plan=None)
    drive(supervised)
    drive(clean)
    assert supervised.stats["retries"] == 0
    assert supervised.stats["rollbacks"] == 0
    assert supervised.values() == clean.values()
    assert supervised.rng_state() == clean.rng_state()


# ---------------------------------------------------------------------------
# sticky faults: the ladder
# ---------------------------------------------------------------------------


def test_sticky_faults_demote_down_the_ladder():
    session = make(
        policy=ResiliencePolicy(max_retries=1),
        plan=FaultPlan(7, rate=1.0, sticky_rate=1.0),
    )
    clean = make(plan=None)
    drive(session)
    drive(clean)
    assert session.rung == "reference", "sticky faults must demote off rung 0"
    assert session.events and isinstance(session.events[0], DegradationEvent)
    ev = session.events[0]
    assert ev.from_rung == "flat" and ev.to_rung == "reference"
    assert ev.attempts == 2  # max_retries=1 => 2 attempts
    # Answers survive degradation (faults only fire on rung 0).
    assert session.values() == clean.values()
    assert session.total() == clean.total()


def test_faults_never_fire_below_the_top_rung():
    session = make(
        policy=ResiliencePolicy(max_retries=0),
        plan=FaultPlan(7, rate=1.0, sticky_rate=1.0),
    )
    drive(session)
    assert session.rung == "reference"
    demotions = len(session.events)
    drive(session)  # a second wave of ops on the lower rung
    assert len(session.events) == demotions, "no faults => no more demotions"


# ---------------------------------------------------------------------------
# abort: the last rung is exhausted
# ---------------------------------------------------------------------------


def test_abort_restores_pre_op_state_bit_for_bit():
    session = make(
        policy=ResiliencePolicy(max_retries=1, ladder=("flat",)),
        plan=FaultPlan(7, rate=1.0, sticky_rate=1.0),
    )
    pre_values = session.values()
    pre_rng = session.rng_state()
    with pytest.raises(RetryExhaustedError) as ei:
        session.batch_insert([(0, 1), (3, 2)])
    assert ei.value.attempts == 2
    assert session.values() == pre_values
    assert session.rng_state() == pre_rng
    session.check_invariants()
    # The session is not poisoned: a fault-free follow-up op works.
    session.plan = None
    session.batch_insert([(0, 1)])
    assert session.values()[0] == 1


# ---------------------------------------------------------------------------
# client errors are not faults
# ---------------------------------------------------------------------------


def test_batch_validation_error_propagates_without_retry():
    session = make(plan=FaultPlan(0, rate=0.0))
    pre_values = session.values()
    pre_rng = session.rng_state()
    with pytest.raises(BatchValidationError):
        # Deleting every leaf is rejected at admission (§7).
        session.batch_delete(list(range(len(session))))
    assert session.stats["retries"] == 0, "client errors must not retry"
    assert session.values() == pre_values
    assert session.rng_state() == pre_rng


def test_position_error_propagates_with_state_restored():
    session = make(plan=FaultPlan(0, rate=0.0))
    pre_values = session.values()
    pre_rng = session.rng_state()
    with pytest.raises(PositionError):
        session.batch_set([(999, 5)])  # out of range: a client error
    assert session.stats["retries"] == 0
    assert session.values() == pre_values
    assert session.rng_state() == pre_rng
    session.check_invariants()


# ---------------------------------------------------------------------------
# policy validation
# ---------------------------------------------------------------------------


def test_policy_rejects_bad_configuration():
    with pytest.raises(Exception):
        ResiliencePolicy(ladder=())
    with pytest.raises(Exception):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(Exception):
        ResiliencePolicy(detect="telepathy")

"""Table renderer and sweep runner."""

import pytest

from repro.analysis.runner import sweep
from repro.analysis.tables import Table


def test_table_renders_aligned():
    t = Table("Demo", ["n", "steps"])
    t.add(1024, 12)
    t.add(1 << 20, 14.5)
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "n" in lines[2] and "steps" in lines[2]
    assert len(lines) == 6
    widths = {len(l) for l in lines[2:]}
    assert len(widths) == 1  # all rows equal width


def test_table_rejects_wrong_arity():
    t = Table("x", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_float_formatting():
    t = Table("f", ["v"])
    t.add(0.00001)
    t.add(123456.0)
    t.add(3.14159)
    rows = t.render().splitlines()[4:]
    assert rows[0].strip() == "1e-05"
    assert rows[2].strip() == "3.14"


def test_sweep_aggregates_over_seeds():
    calls = []

    def run(seed, n):
        calls.append((seed, n))
        return {"cost": n * 10 + seed}

    cells = sweep([{"n": 1}, {"n": 2}], run, seeds=(0, 1, 2))
    assert len(cells) == 2
    assert cells[0].mean("cost") == 11.0
    assert cells[0].stdev("cost") == 1.0
    assert cells[1].max("cost") == 22
    assert len(calls) == 6

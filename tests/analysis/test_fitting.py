"""Growth-model fitting sanity."""

import math

import pytest

from repro.analysis.fitting import MODELS, best_model, fit_model


def test_fit_recovers_log_coefficients():
    xs = [2**k for k in range(4, 16)]
    ys = [3.0 * math.log2(x) + 5.0 for x in xs]
    fit = fit_model(xs, ys, "log")
    assert abs(fit.a - 3.0) < 1e-6
    assert abs(fit.b - 5.0) < 1e-6
    assert fit.r2 > 0.999999


def test_best_model_identifies_generator():
    xs = [2**k for k in range(6, 20)]
    cases = {
        "log": [2 * math.log2(x) + 1 for x in xs],
        "loglog": [4 * math.log2(math.log2(x)) + 2 for x in xs],
        "linear": [0.5 * x + 3 for x in xs],
    }
    for name, ys in cases.items():
        assert best_model(xs, ys).model == name, name


def test_constant_data_prefers_const():
    xs = [2**k for k in range(4, 12)]
    ys = [7.0] * len(xs)
    fit = best_model(xs, ys)
    assert fit.model == "const"
    assert fit.predict(10**6) == pytest.approx(7.0)


def test_predict_round_trips():
    xs = [10, 100, 1000]
    ys = [math.sqrt(x) for x in xs]
    fit = fit_model(xs, ys, "sqrt")
    assert fit.predict(400) == pytest.approx(20.0, rel=1e-6)


def test_models_monotone_where_expected():
    for name in ("loglog", "log", "sqrt", "linear"):
        f = MODELS[name]
        assert f(1 << 20) > f(1 << 10)

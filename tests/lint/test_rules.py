"""Each rule catches its planted fixture violation and accepts the
clean twin; engine-level behaviours (suppression, JSON report) ride
along."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.config import (
    JournalSpec,
    LintConfig,
    ParityPair,
    REPO_CONFIG,
    SnapshotSpec,
)
from repro.lint.engine import SCHEMA, run_lint
from repro.lint.rules import (
    BackendParityRule,
    BareRaiseRule,
    ExportHygieneRule,
    JournalCoverageRule,
    RandomnessRule,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _run(targets, rules):
    return run_lint(FIXTURES, targets, rules)


def _rules_of(report):
    return sorted(f.rule for f in report.findings)


# ---------------------------------------------------------------------------
# R001 — bare builtin raise
# ---------------------------------------------------------------------------


def test_r001_flags_planted_builtin_raises():
    report = _run(["r001_bad.py"], [BareRaiseRule(REPO_CONFIG)])
    assert _rules_of(report) == ["R001", "R001"]
    messages = " ".join(f.message for f in report.findings)
    assert "KeyError" in messages and "ValueError" in messages
    # TypeError is an allowed programming-error signal.
    assert "TypeError" not in messages


def test_r001_clean_twin_passes():
    report = _run(["r001_good.py"], [BareRaiseRule(REPO_CONFIG)])
    assert report.clean


def test_r001_pragma_suppression():
    report = _run(["r001_suppressed.py"], [BareRaiseRule(REPO_CONFIG)])
    assert report.clean


# ---------------------------------------------------------------------------
# R002 — unsanctioned randomness
# ---------------------------------------------------------------------------


def test_r002_flags_planted_randomness():
    report = _run(["r002_bad.py"], [RandomnessRule(REPO_CONFIG)])
    assert _rules_of(report) == ["R002", "R002", "R002"]
    joined = " ".join(f.message for f in report.findings)
    assert "global RNG" in joined
    assert "urandom" in joined
    assert "without a seed" in joined


def test_r002_registered_seam_is_exempt():
    config = LintConfig(
        rng_seams=frozenset(
            {"r002_bad.py::draw", "r002_bad.py::token", "r002_bad.py::fresh_rng"}
        )
    )
    report = _run(["r002_bad.py"], [RandomnessRule(config)])
    assert report.clean


def test_r002_clean_twin_passes():
    report = _run(["r002_good.py"], [RandomnessRule(REPO_CONFIG)])
    assert report.clean


# ---------------------------------------------------------------------------
# R003 — backend API parity
# ---------------------------------------------------------------------------

_PARITY_CONFIG = LintConfig(
    parity_pairs=(
        ParityPair(
            name="store",
            kind="class",
            ref_path="parity_ref.py",
            ref_symbol="Store",
            flat_path="parity_flat_bad.py",
            flat_symbol="FlatStore",
        ),
        ParityPair(
            name="activate",
            kind="function",
            ref_path="parity_ref.py",
            ref_symbol="activate",
            flat_path="parity_flat_bad.py",
            flat_symbol="flat_activate",
        ),
    )
)


def test_r003_flags_every_planted_drift():
    report = _run(
        ["parity_ref.py", "parity_flat_bad.py"],
        [BackendParityRule(_PARITY_CONFIG)],
    )
    messages = [f.message for f in report.findings]
    assert len(messages) == 5, messages
    joined = " ".join(messages)
    assert "parameter drift on 'insert'" in joined
    assert "lacks public member 'delete'" in joined
    assert "'depth' is a property" in joined
    assert "grew public member 'compact'" in joined
    assert "parameter drift — activate" in joined


def test_r003_allow_extra_registry_silences_growth():
    config = LintConfig(
        parity_pairs=(
            ParityPair(
                name="store",
                kind="class",
                ref_path="parity_ref.py",
                ref_symbol="Store",
                flat_path="parity_flat_bad.py",
                flat_symbol="FlatStore",
                allow_extra_flat=frozenset({"compact"}),
                notes="test: compact registered",
            ),
        )
    )
    report = _run(
        ["parity_ref.py", "parity_flat_bad.py"],
        [BackendParityRule(config)],
    )
    assert all("compact" not in f.message for f in report.findings)


def test_r003_contraction_trace_pair_flags_planted_drift():
    """The contraction-trace pair shape (RakeTrace vs FlatContraction)
    with every drift class planted on the flat side."""
    config = LintConfig(
        parity_pairs=(
            ParityPair(
                name="contraction-trace",
                kind="class",
                ref_path="parity_contraction_ref.py",
                ref_symbol="Trace",
                flat_path="parity_contraction_flat_bad.py",
                flat_symbol="FlatTrace",
                allow_extra_ref=frozenset({"new_node"}),
                notes="test: new_node registered reference-only",
            ),
        )
    )
    report = _run(
        ["parity_contraction_ref.py", "parity_contraction_flat_bad.py"],
        [BackendParityRule(config)],
    )
    messages = [f.message for f in report.findings]
    assert len(messages) == 5, messages
    joined = " ".join(messages)
    assert "parameter drift on 'set_rake_op'" in joined
    assert "parameter drift on 'heal'" in joined
    assert "lacks public member 'removal_kind'" in joined
    assert "grew public member 'sweep'" in joined
    assert "'value' is a property" in joined
    # The registered reference-only allocator never reports.
    assert "new_node" not in joined


def test_r003_repo_contraction_pair_registered():
    """The real RakeTrace<->FlatContraction surfaces are pinned by the
    repo config — and currently in lockstep."""
    pair = {p.name: p for p in REPO_CONFIG.parity_pairs}["contraction-trace"]
    assert pair.ref_symbol == "RakeTrace"
    assert pair.flat_symbol == "FlatContraction"
    assert pair.allow_extra_ref == frozenset({"new_node"})
    assert pair.allow_extra_flat == frozenset({"replay", "removal"})
    repo_root = Path(__file__).resolve().parents[2]
    report = run_lint(
        repo_root,
        [pair.ref_path, pair.flat_path],
        [BackendParityRule(REPO_CONFIG)],
    )
    assert report.clean, [f.message for f in report.findings]


# ---------------------------------------------------------------------------
# R004 — journal / crash-point coverage
# ---------------------------------------------------------------------------

_JOURNAL_CONFIG = LintConfig(
    journal_specs=(
        JournalSpec(
            path="journal_bad.py",
            class_name="Tree",
            node_fields=frozenset({"left"}),
            columns=frozenset({"_left", "_right"}),
            allowlist={"__init__": "test: construction"},
        ),
    )
)


def test_r004_flags_unjournaled_mutations():
    report = _run(["journal_bad.py"], [JournalCoverageRule(_JOURNAL_CONFIG)])
    flagged = sorted(
        f.message.split(" ")[0] for f in report.findings
    )
    assert flagged == ["Tree.grow", "Tree.relink", "Tree.splice"], [
        str(f) for f in report.findings
    ]
    # `guarded` references self._journal and stays clean.
    assert all("guarded" not in f.message for f in report.findings)


def test_r004_module_scan_flags_resilience_style_mutations():
    """``class_name=None`` + ``any_receiver`` covers module-level repair
    helpers that rewrite *another object's* backend cells (the
    resilience scrub/restore sites)."""
    config = LintConfig(
        journal_specs=(
            JournalSpec(
                path="scrub_bad.py",
                class_name=None,
                node_fields=frozenset({"parent"}),
                columns=frozenset({"_n_leaves"}),
                any_receiver=True,
            ),
        )
    )
    report = _run(["scrub_bad.py"], [JournalCoverageRule(config)])
    flagged = sorted(f.message.split(" ")[0] for f in report.findings)
    assert flagged == [
        "scrub_bad.py.Repairer.bad_relink",
        "scrub_bad.py.bad_recompute",
    ], [str(f) for f in report.findings]
    # Both good_* variants reference the journal seam and stay clean.
    assert all("good_" not in f.message for f in report.findings)


def test_r004_module_scan_allowlist():
    config = LintConfig(
        journal_specs=(
            JournalSpec(
                path="scrub_bad.py",
                class_name=None,
                node_fields=frozenset({"parent"}),
                columns=frozenset({"_n_leaves"}),
                any_receiver=True,
                allowlist={
                    "bad_recompute": "test",
                    "Repairer.bad_relink": "test",
                },
            ),
        )
    )
    report = _run(["scrub_bad.py"], [JournalCoverageRule(config)])
    assert report.clean, [str(f) for f in report.findings]


def test_r004_allowlist_silences_with_justification():
    config = LintConfig(
        journal_specs=(
            JournalSpec(
                path="journal_bad.py",
                class_name="Tree",
                node_fields=frozenset({"left"}),
                columns=frozenset({"_left", "_right"}),
                allowlist={
                    "__init__": "test",
                    "splice": "test",
                    "grow": "test",
                    "relink": "test",
                },
            ),
        )
    )
    report = _run(["journal_bad.py"], [JournalCoverageRule(config)])
    assert report.clean


# ---------------------------------------------------------------------------
# R004 — snapshot-coverage mode
# ---------------------------------------------------------------------------

_SNAPSHOT_SPEC = SnapshotSpec(
    path="snapshot_bad.py",
    class_name="Tree",
    columns=frozenset({"_left"}),
    node_class=("snapshot_bad.py", "Node"),
    covered_fields=frozenset({"left", "right"}),
)


def test_r004_snapshot_mode_flags_uncovered_mutations():
    config = LintConfig(journal_specs=(), snapshot_specs=(_SNAPSHOT_SPEC,))
    report = _run(["snapshot_bad.py"], [JournalCoverageRule(config)])
    flagged = sorted(f.message.split(" ")[0] for f in report.findings)
    assert flagged == ["Tree.demote", "Tree.paint", "Tree.shade"], [
        str(f) for f in report.findings
    ]
    joined = " ".join(f.message for f in report.findings)
    assert "self._color" in joined
    assert "uncovered node field .color" in joined
    # `relink` mutates a covered column and stays clean.
    assert "relink" not in joined


def test_r004_snapshot_mode_allowlist():
    spec = SnapshotSpec(
        path=_SNAPSHOT_SPEC.path,
        class_name=_SNAPSHOT_SPEC.class_name,
        columns=_SNAPSHOT_SPEC.columns,
        node_class=_SNAPSHOT_SPEC.node_class,
        covered_fields=_SNAPSHOT_SPEC.covered_fields,
        allowlist={"paint": "test", "shade": "test", "demote": "test"},
    )
    config = LintConfig(journal_specs=(), snapshot_specs=(spec,))
    report = _run(["snapshot_bad.py"], [JournalCoverageRule(config)])
    assert report.clean, [str(f) for f in report.findings]


def test_r004_snapshot_registry_cross_check():
    """A crash-hooked class with neither a SnapshotSpec nor an exemption
    is flagged; the exemption registry silences it."""
    config = LintConfig(
        journal_specs=(),
        snapshot_specs=(_SNAPSHOT_SPEC,),
        snapshot_exempt=frozenset(),
        crash_points_path="crashes_registry.py",
    )
    report = _run(
        ["snapshot_bad.py", "crashes_registry.py"],
        [JournalCoverageRule(config)],
    )
    orphan = [f for f in report.findings if "Orphan" in f.message]
    assert len(orphan) == 1, [str(f) for f in report.findings]
    assert "no SnapshotSpec covers it" in orphan[0].message

    exempt = LintConfig(
        journal_specs=(),
        snapshot_specs=(_SNAPSHOT_SPEC,),
        snapshot_exempt=frozenset({"Orphan"}),
        crash_points_path="crashes_registry.py",
    )
    report = _run(
        ["snapshot_bad.py", "crashes_registry.py"],
        [JournalCoverageRule(exempt)],
    )
    assert all("Orphan" not in f.message for f in report.findings)


def test_r004_repo_snapshot_specs_mirror_coverage_constants():
    """The repo-level specs must stay literally the sets the snapshot
    layer restores — coverage and lint cannot drift apart."""
    from repro.snapshots.core import (
        FLAT_SNAPSHOT_COLUMNS,
        REFERENCE_SNAPSHOT_FIELDS,
    )

    specs = {s.class_name: s for s in REPO_CONFIG.snapshot_specs}
    assert specs["FlatRBSTS"].columns == FLAT_SNAPSHOT_COLUMNS
    assert specs["ParallelRBSTS"].columns == FLAT_SNAPSHOT_COLUMNS
    assert specs["RBSTS"].covered_fields == REFERENCE_SNAPSHOT_FIELDS
    assert specs["RBSTS"].node_class == (
        "src/repro/splitting/node.py",
        "BSTNode",
    )
    assert "SnapshotIO" in REPO_CONFIG.snapshot_exempt


# ---------------------------------------------------------------------------
# R005 — __all__ hygiene
# ---------------------------------------------------------------------------


def test_r005_flags_missing_all():
    report = _run(["r005_bad.py"], [ExportHygieneRule(REPO_CONFIG)])
    assert _rules_of(report) == ["R005"]
    assert "no __all__" in report.findings[0].message


def test_r005_flags_stale_duplicate_and_unlisted():
    report = _run(["r005_bad_stale.py"], [ExportHygieneRule(REPO_CONFIG)])
    joined = " ".join(f.message for f in report.findings)
    assert "more than once" in joined
    assert "'ghost'" in joined
    assert "'unlisted'" in joined
    assert len(report.findings) == 3


def test_r005_exempt_registry():
    config = LintConfig(exports_exempt=frozenset({"r005_bad.py"}))
    report = _run(["r005_bad.py"], [ExportHygieneRule(config)])
    assert report.clean


# ---------------------------------------------------------------------------
# engine-level behaviours
# ---------------------------------------------------------------------------


def test_report_json_shape():
    report = _run(["r001_bad.py"], [BareRaiseRule(REPO_CONFIG)])
    doc = report.to_json()
    assert doc["schema"] == SCHEMA
    assert doc["files"] == 1
    assert doc["counts"] == {"R001": 2}
    assert doc["clean"] is False
    first = doc["findings"][0]
    assert set(first) == {"rule", "level", "path", "line", "col", "message"}


def test_missing_target_raises():
    with pytest.raises(FileNotFoundError):
        _run(["does_not_exist.py"], [BareRaiseRule(REPO_CONFIG)])

"""The R2xx interprocedural pass: planted fixtures fire exactly their
expected finding, the extraction/graph layers resolve the seams the
checks rely on, the summary cache invalidates on edit, and the real
repo is clean."""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path

import pytest

from repro.lint.cli import repo_root
from repro.lint.config import EffectEntry, LintConfig, REPO_CONFIG
from repro.lint.effects import (
    EFFECTS_SCHEMA,
    EffectGraph,
    ExtractionSpec,
    extract_module,
    run_effects,
)

FIXTURES = Path(__file__).parent / "fixtures" / "effects"

_SPEC = ExtractionSpec(
    columns=frozenset({"parent", "left"}),
    node_fields=frozenset(),
    seam_prefixes=(),
)


def _fixture_config(**overrides) -> LintConfig:
    base = dict(
        effect_entries=(
            EffectEntry("r201_deep.py", "Store", "batch_put", ("R201",)),
            EffectEntry("r201_clean.py", "Store", "batch_put", ("R201",)),
            EffectEntry(
                "r201_suppressed.py", "Store", "batch_put", ("R201",)
            ),
            EffectEntry("r202_base.py", "BaseTree", "batch_link", ("R202",)),
            EffectEntry("r202_sub.py", "FastTree", "batch_link", ("R202",)),
        ),
        worker_kernel_roots=(
            ("r203_worker.py", "worker_main"),
            ("r203_clean.py", "worker_main"),
        ),
        txn_guards={},
        effect_allowlist={},
        effect_columns=frozenset({"parent", "left"}),
        effect_node_fields=frozenset(),
        effect_seam_paths=(),
    )
    base.update(overrides)
    return LintConfig(**base)


def _run_fixtures(**overrides):
    return run_effects(
        FIXTURES, ["."], _fixture_config(**overrides), use_cache=False
    )


def _by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


def _fn(mod, qualname):
    return next(f for f in mod.functions if f.qualname == qualname)


# ---------------------------------------------------------------------------
# planted fixtures — one expected finding each
# ---------------------------------------------------------------------------


def test_r201_violation_two_calls_deep():
    report = _run_fixtures()
    hits = [
        f for f in _by_rule(report, "R201") if f.path == "r201_deep.py"
    ]
    assert len(hits) == 1
    (f,) = hits
    assert "_shuffle" in f.message
    assert "Store.batch_put" in f.message
    # the chain names the intermediate hop the site-local rule misses
    assert "_plan" in f.message


def test_r201_clean_twin_and_pragma_are_silent():
    report = _run_fixtures()
    assert not [f for f in report.findings if f.path == "r201_clean.py"]
    assert not [
        f for f in report.findings if f.path == "r201_suppressed.py"
    ]


def test_r202_violation_across_subclass_boundary():
    report = _run_fixtures()
    hits = _by_rule(report, "R202")
    assert [f.path for f in hits] == ["r202_sub.py"]
    (f,) = hits
    assert "FastTree._link_core" in f.message
    assert "mut-col:left" in f.message
    # the covered-universe cross-check: left IS restorable
    assert "snapshot-covered" in f.message


def test_r202_guarded_base_is_silent():
    report = _run_fixtures()
    assert not [f for f in report.findings if f.path == "r202_base.py"]


def test_r203_worker_impurity():
    report = _run_fixtures()
    hits = _by_rule(report, "R203")
    assert {f.path for f in hits} == {"r203_worker.py"}
    kinds = {f.message.split("impure effect ")[1].split(":")[0] for f in hits}
    # the seeded draw in the loop AND the file write two calls down
    assert "rng" in kinds
    assert "io" in kinds
    assert not [f for f in hits if f.path == "r203_clean.py"]


def test_r204_txn_region_uncovered_mutation():
    report = _run_fixtures()
    hits = [f for f in _by_rule(report, "R204") if f.path == "r204_txn.py"]
    assert len(hits) == 1
    (f,) = hits
    assert "mut-other:_stats" in f.message
    assert "Tree._count" in f.message
    assert "rollback" in f.message


def test_r204_taxonomy_swallow():
    report = _run_fixtures()
    hits = [
        f for f in _by_rule(report, "R204") if f.path == "r204_swallow.py"
    ]
    # the re-raising and narrow handlers are not findings
    assert len(hits) == 1
    (f,) = hits
    assert "in swallow" in f.message
    assert f.line == 13  # the except line of the swallowing handler


def test_allowlist_drops_justified_owner():
    report = _run_fixtures(
        effect_allowlist={
            "R202": {"r202_sub.py::FastTree._link_core": "test"},
        }
    )
    assert not _by_rule(report, "R202")


def test_registry_drift_is_a_finding():
    report = _run_fixtures(
        effect_entries=(
            EffectEntry("r201_deep.py", "Store", "no_such_method", ("R201",)),
        ),
        worker_kernel_roots=(),
    )
    drift = [f for f in report.findings if "registry drift" in f.message]
    assert len(drift) == 1 and drift[0].line == 0


# ---------------------------------------------------------------------------
# the repro.serve registration (PR 10) — planted twins of the real shapes
# ---------------------------------------------------------------------------


def _serve_fixture_entries():
    return (
        EffectEntry(
            "serve_window_bad.py", "MiniShard", "execute_window", ("R201",)
        ),
        # module-level entry (empty class_name), like quarantine_bisect
        EffectEntry("serve_probe.py", "", "bisect", ("R201", "R202")),
    )


def test_serve_window_clock_read_fires_r201():
    report = _run_fixtures(effect_entries=_serve_fixture_entries())
    hits = [
        f for f in _by_rule(report, "R201")
        if f.path == "serve_window_bad.py"
    ]
    assert len(hits) == 1
    (f,) = hits
    assert "wall-clock read" in f.message
    assert "MiniShard.execute_window" in f.message
    assert "_expired" in f.message  # two calls down


def test_serve_probe_module_entry_fires_r202():
    report = _run_fixtures(effect_entries=_serve_fixture_entries())
    hits = [
        f for f in _by_rule(report, "R202") if f.path == "serve_probe.py"
    ]
    assert len(hits) == 1
    (f,) = hits
    assert "mut-col:parent" in f.message
    assert "bisect" in f.message


def test_serve_probe_swallow_fires_r204_unless_allowlisted():
    report = _run_fixtures(effect_entries=_serve_fixture_entries())
    hits = [
        f for f in _by_rule(report, "R204") if f.path == "serve_probe.py"
    ]
    assert len(hits) == 1
    assert "in probe" in hits[0].message
    quiet = _run_fixtures(
        effect_entries=_serve_fixture_entries(),
        effect_allowlist={
            "R204": {"serve_probe.py::probe": "fixture justification"},
        },
    )
    assert not [
        f for f in _by_rule(quiet, "R204") if f.path == "serve_probe.py"
    ]


def test_repo_config_registers_the_serve_paths():
    """The real registry covers the serving layer's decision paths and
    justifies its outcome-classification boundaries."""
    fids = {
        (e.path, e.class_name, e.method, e.rules)
        for e in REPO_CONFIG.effect_entries
    }
    assert (
        "src/repro/serve/shard.py", "Shard", "execute_window", ("R201",)
    ) in fids
    assert (
        "src/repro/serve/shard.py", "Shard", "_apply_admitted",
        ("R201", "R202"),
    ) in fids
    assert (
        "src/repro/serve/quarantine.py", "", "quarantine_bisect",
        ("R201", "R202"),
    ) in fids
    r204 = REPO_CONFIG.effect_allowlist["R204"]
    for owner in (
        "src/repro/serve/quarantine.py::_Prober.probe",
        "src/repro/serve/shard.py::Shard.execute_window",
        "src/repro/serve/shard.py::Shard._quarantine",
        "src/repro/serve/chaos.py::run_chaos",
    ):
        assert owner in r204 and r204[owner]


# ---------------------------------------------------------------------------
# extraction & graph units
# ---------------------------------------------------------------------------


def test_extract_set_iteration_and_sorted_exemption():
    src = (
        "def f(xs):\n"
        "    s = set(xs)\n"
        "    a = [x for x in s]\n"
        "    b = [x for x in sorted(s)]\n"
        "    return a, b, (3 in s)\n"
    )
    mod = extract_module("m.py", src, _SPEC)
    set_iters = [a for a in _fn(mod, "f").atoms if a.kind == "set-iter"]
    assert len(set_iters) == 1 and set_iters[0].line == 3


def test_extract_sanctioned_vs_global_rng():
    src = (
        "import random\n"
        "def f(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.random() + random.random()\n"
    )
    mod = extract_module("m.py", src, _SPEC)
    kinds = sorted(a.kind for a in _fn(mod, "f").atoms)
    assert "rng" in kinds and "global-rng" in kinds


def test_extract_column_alias_through_tuple_unpack():
    src = (
        "class T:\n"
        "    def f(self, u, v):\n"
        "        parent, left = self._parent, self._left\n"
        "        parent[u] = v\n"
        "        left[u] = u\n"
    )
    spec = ExtractionSpec(
        columns=frozenset({"_parent", "_left"}),
        node_fields=frozenset(),
        seam_prefixes=(),
    )
    mod = extract_module("m.py", src, spec)
    atoms = _fn(mod, "T.f").atoms
    assert {(a.kind, a.detail) for a in atoms} == {
        ("mut-col", "_parent"),
        ("mut-col", "_left"),
    }


def test_extract_txn_line_and_journal_seam():
    src = (
        "class T:\n"
        "    def g(self):\n"
        "        self._journal.append(1)\n"
        "        self._x = 2\n"
        "    def h(self):\n"
        "        self._txn_begin()\n"
        "        self._x = 3\n"
    )
    mod = extract_module("m.py", src, _SPEC)
    assert _fn(mod, "T.g").journal_seam
    assert not _fn(mod, "T.g").opens_txn
    assert _fn(mod, "T.h").opens_txn
    assert _fn(mod, "T.h").txn_line == 6


def test_graph_self_dispatch_includes_subclass_override():
    base = extract_module(
        "base.py",
        "class A:\n"
        "    def entry(self):\n"
        "        return self.core()\n"
        "    def core(self):\n"
        "        return 1\n",
        _SPEC,
    )
    sub = extract_module(
        "sub.py",
        "from base import A\n"
        "class B(A):\n"
        "    def core(self):\n"
        "        return 2\n",
        _SPEC,
    )
    graph = EffectGraph([base, sub])
    entry = graph.find_entry("base.py", "A", "entry")
    assert entry is not None
    reach = graph.reachable([entry])
    assert "base.py::A.core" in reach
    assert "sub.py::B.core" in reach
    # the inherited entry resolves through the subclass row too
    assert graph.find_entry("sub.py", "B", "entry") is not None


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


def _copy_fixtures(tmp_path: Path) -> Path:
    dst = tmp_path / "work"
    shutil.copytree(FIXTURES, dst)
    return dst


def test_cache_hit_and_invalidation(tmp_path):
    work = _copy_fixtures(tmp_path)
    cache_file = tmp_path / "cache.json"
    config = _fixture_config()
    first = run_effects(work, ["."], config, cache_file=cache_file)
    assert first.cache_hits == 0 and first.cache_misses == first.files
    second = run_effects(work, ["."], config, cache_file=cache_file)
    assert second.cache_misses == 0 and second.cache_hits == second.files
    assert [f.to_json() for f in second.findings] == [
        f.to_json() for f in first.findings
    ]
    # editing one file re-extracts exactly that file...
    target = work / "r201_deep.py"
    target.write_text(
        target.read_text(encoding="utf-8").replace(
            "random.shuffle(items)", "items.sort()"
        ),
        encoding="utf-8",
    )
    third = run_effects(work, ["."], config, cache_file=cache_file)
    assert third.cache_misses == 1
    assert third.cache_hits == third.files - 1
    # ...and the fix is visible through the cached neighbours
    assert not [f for f in third.findings if f.path == "r201_deep.py"]


def test_cache_invalidated_by_spec_change(tmp_path):
    work = _copy_fixtures(tmp_path)
    cache_file = tmp_path / "cache.json"
    run_effects(work, ["."], _fixture_config(), cache_file=cache_file)
    changed = _fixture_config(effect_columns=frozenset({"parent"}))
    rerun = run_effects(work, ["."], changed, cache_file=cache_file)
    assert rerun.cache_hits == 0 and rerun.cache_misses == rerun.files


def test_warm_run_is_fast(tmp_path):
    root = repo_root()
    cache_file = tmp_path / "cache.json"
    t0 = time.perf_counter()
    run_effects(root, ["src/repro"], REPO_CONFIG, cache_file=cache_file)
    cold = time.perf_counter() - t0
    warm = min(
        _timed(root, cache_file) for _ in range(3)
    )
    assert warm < 0.25 * cold, f"warm {warm:.3f}s vs cold {cold:.3f}s"


def _timed(root: Path, cache_file: Path) -> float:
    t0 = time.perf_counter()
    report = run_effects(
        root, ["src/repro"], REPO_CONFIG, cache_file=cache_file
    )
    assert report.cache_misses == 0
    return time.perf_counter() - t0


# ---------------------------------------------------------------------------
# the real repo
# ---------------------------------------------------------------------------


def test_repo_is_effect_clean():
    report = run_effects(
        repo_root(), ["src/repro"], REPO_CONFIG, use_cache=False
    )
    assert report.clean, "\n".join(str(f) for f in report.findings)


def test_repo_entries_all_resolve():
    report = run_effects(
        repo_root(), ["src/repro"], REPO_CONFIG, use_cache=False
    )
    assert not [
        f for f in report.findings if "registry drift" in f.message
    ]
    # every configured entry produced a function record universe to scan
    assert len(report.entries) == len(REPO_CONFIG.effect_entries)


def test_report_json_schema():
    report = _run_fixtures()
    doc = report.to_json()
    assert doc["schema"] == EFFECTS_SCHEMA
    assert doc["clean"] is False
    assert set(doc["counts"]) == {"R201", "R202", "R203", "R204"}
    json.dumps(doc)  # round-trips
    fn = doc["functions"]["r201_deep.py::_shuffle"]
    # atoms serialize as [kind, detail, line] triples
    assert fn["atoms"] and fn["atoms"][0][0] == "global-rng"


def test_cli_effects_mode(tmp_path, capsys):
    from repro.lint.cli import main

    rc = main(["--effects", "--no-cache", "--json"])
    out = capsys.readouterr().out
    assert rc == 0
    doc = json.loads(out)
    assert doc["schema"] == EFFECTS_SCHEMA and doc["clean"] is True

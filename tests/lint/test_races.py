"""Race detector: planted step-discipline violations are flagged, the
shipped PRAM programs pass."""

from __future__ import annotations

from pathlib import Path

from repro.lint.config import REPO_CONFIG, LintConfig
from repro.lint.engine import run_lint
from repro.lint.races import (
    CommonDisagreementRule,
    PokeInStepRule,
    StaleReadRule,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

_RACE_RULES = lambda cfg: [  # noqa: E731 - tiny factory
    StaleReadRule(cfg),
    PokeInStepRule(cfg),
    CommonDisagreementRule(cfg),
]


def _run_fixture(name):
    return run_lint(FIXTURES, [name], _RACE_RULES(REPO_CONFIG))


def test_planted_stale_read_is_flagged():
    report = _run_fixture("races_bad_stale.py")
    rules = [f.rule for f in report.findings]
    assert "R101" in rules, [str(f) for f in report.findings]
    finding = next(f for f in report.findings if f.rule == "R101")
    assert "'x'" in finding.message
    assert "pre-write value" in finding.message


def test_planted_common_disagreement_is_flagged():
    report = _run_fixture("races_bad_common.py")
    rules = [f.rule for f in report.findings]
    assert "R103" in rules, [str(f) for f in report.findings]
    finding = next(f for f in report.findings if f.rule == "R103")
    assert "'winner'" in finding.message


def test_planted_poke_in_step_is_flagged():
    report = _run_fixture("races_bad_poke.py")
    rules = [f.rule for f in report.findings]
    assert rules == ["R102"], [str(f) for f in report.findings]


def test_clean_programs_pass():
    report = _run_fixture("races_good.py")
    assert report.clean, [str(f) for f in report.findings]


def test_shipped_pram_programs_pass():
    report = run_lint(
        REPO_ROOT,
        ["src/repro/pram/programs.py"],
        _RACE_RULES(REPO_CONFIG),
    )
    assert report.clean, [str(f) for f in report.findings]


def test_shipped_activation_program_passes_via_sanction():
    report = run_lint(
        REPO_ROOT,
        ["src/repro/splitting/activation_pram.py"],
        _RACE_RULES(REPO_CONFIG),
    )
    assert report.clean, [str(f) for f in report.findings]


def test_activation_sanction_is_load_bearing():
    """Dropping the registered monotone-marking sanction must re-expose
    the concurrent ACTIVE marking as a stale-read hazard — the registry
    is doing real work."""
    config = LintConfig(sanctioned_races=frozenset())
    report = run_lint(
        REPO_ROOT,
        ["src/repro/splitting/activation_pram.py"],
        _RACE_RULES(config),
    )
    assert any(f.rule == "R101" for f in report.findings)

"""Planted R004 violations for the module-scan / any-receiver mode:
resilience-style repair helpers that rewrite another object's backend
cells outside any journal."""

__all__ = ["bad_recompute", "good_recompute", "Repairer"]


def bad_recompute(tree, node, value):  # planted: unjournaled column store
    tree._n_leaves[node] = value


def good_recompute(tree, journal, node, value):  # clean: journal seam
    journal.save_slot(tree, node)
    tree._n_leaves[node] = value


class Repairer:
    def bad_relink(self, child, grandparent):  # planted: node store
        child.parent = grandparent

    def good_relink(self, tree, child, grandparent):  # clean: journal seam
        journal = tree._txn_begin()
        child.parent = grandparent
        tree._txn_commit(journal)

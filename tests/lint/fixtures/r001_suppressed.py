"""Planted-but-suppressed R001 violation (pragma escape hatch)."""

__all__ = ["legacy"]


def legacy(x):
    if x < 0:
        raise ValueError("legacy contract")  # lint: ignore[R001]
    return x

"""Planted R103: COMMON-policy writers that disagree.

Every instance writes its own ``i`` into the single cell
``("winner", 0)`` under ``WritePolicy.COMMON`` — the first step with
two processors raises ``WriteConflictError`` at run time.
"""

from repro.pram.machine import Machine
from repro.pram.memory import WritePolicy
from repro.pram.ops import Read, Write

__all__ = ["run"]


def _claimer(i):
    yield Write(("winner", 0), i)  # planted: disagreeing COMMON writers
    _ = yield Read(("winner", 0))


def run(n):
    machine = Machine(policy=WritePolicy.COMMON)
    for i in range(n):
        machine.spawn(_claimer(i))
    return machine.run()

"""Clean step programs the race detector must accept.

``_stepper`` is the Hillis–Steele prefix step: reads at offsets 0/1
strictly precede the offset-2 write, and the write's ``("x", i)`` index
is injective in the varying ``i``.  ``_marker`` writes the *same*
constant to one cell under COMMON — concurrent, but agreeing.
"""

from repro.pram.machine import Machine
from repro.pram.memory import WritePolicy
from repro.pram.ops import Read, Write

__all__ = ["run_stepper", "run_marker"]


def _stepper(i, stride):
    left = yield Read(("x", i - stride))
    mine = yield Read(("x", i))
    yield Write(("x", i), left + mine)


def run_stepper(n, stride):
    machine = Machine(policy=WritePolicy.PRIORITY)
    for i in range(stride, n):
        machine.spawn(_stepper(i, stride))
    return machine.run()


def _marker(i):
    yield Write(("seen", 0), 1)  # COMMON writers agreeing on a constant
    yield Write(("slot", i), 1)


def run_marker(n):
    machine = Machine(policy=WritePolicy.COMMON)
    for i in range(n):
        machine.spawn(_marker(i))
    return machine.run()

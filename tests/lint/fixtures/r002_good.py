"""Clean twin of r002_bad: every draw comes from a seeded instance."""

import random

__all__ = ["Sampler"]


class Sampler:
    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def draw(self) -> float:
        return self._rng.random()

"""Planted R005 violations: no __all__ despite public defs."""


def exported_maybe():
    return 1


class Widget:
    pass

"""Planted R101: a same-step read/write race.

The two ``if`` arms yield unequal often, but the colliding events sit
at the *same* aligned offset (1): an instance in the write arm stores
``("x", i)`` in the very step an instance in the read arm loads
``("x", i + 1)`` — for neighbouring ``i`` that is the same cell, and
the reader silently sees the pre-write value.
"""

from repro.pram.machine import Machine
from repro.pram.memory import WritePolicy
from repro.pram.ops import Read, Write

__all__ = ["run"]


def _racer(i):
    flag = yield Read(("flag", i))
    if flag:
        yield Write(("x", i), 1)
    else:
        stale = yield Read(("x", i + 1))  # planted: same step as the write
        yield Write(("y", i), stale)


def run(n):
    machine = Machine(policy=WritePolicy.ARBITRARY)
    for i in range(n):
        machine.spawn(_racer(i))
    return machine.run()

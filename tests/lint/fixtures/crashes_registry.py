"""R004 snapshot-registry fixture: a crash-hooked class with no
SnapshotSpec claiming it (and no exemption) must be flagged — a crash
point inside an un-snapshottable structure is unrecoverable."""


def _patch(cls, attr, replacement):
    setattr(cls, attr, replacement)


class Orphan:
    def hook(self):
        pass


def install(ctl):
    _patch(Orphan, "hook", lambda self: ctl.tick())

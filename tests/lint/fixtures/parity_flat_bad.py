"""Drifted flat side of the planted R003 parity pair.

Planted drift: ``insert`` renamed a parameter, ``delete`` is missing,
``depth`` became a method, ``compact`` grew with no reference twin,
``flat_activate`` reordered parameters.
"""

__all__ = ["FlatStore", "flat_activate"]


class FlatStore:
    size: int

    def insert(self, key, val):  # planted: parameter drift
        pass

    # planted: delete missing

    def depth(self):  # planted: property became a method
        return 0

    def compact(self):  # planted: extra public member
        pass


def flat_activate(tree, budget=None, leaves=()):  # planted: param drift
    return None

"""Planted R002 violations: unsanctioned randomness."""

import os
import random

__all__ = ["draw", "token", "fresh_rng"]


def draw():
    return random.random()  # planted: global RNG


def token():
    return os.urandom(8)  # planted: OS entropy


def fresh_rng():
    return random.Random()  # planted: unseeded Random

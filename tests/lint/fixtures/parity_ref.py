"""Reference side of the planted R003 parity pair."""

__all__ = ["Store", "activate"]


class Store:
    size: int

    def insert(self, key, value):
        pass

    def delete(self, key):
        pass

    @property
    def depth(self):
        return 0


def activate(tree, leaves, budget=None):
    return None

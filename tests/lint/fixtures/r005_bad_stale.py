"""Planted R005 violations: stale/duplicated __all__ entries and an
unexported public def."""

__all__ = ["helper", "helper", "ghost"]


def helper():
    return 1


def unlisted():
    return 2

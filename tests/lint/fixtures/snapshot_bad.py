"""R004 snapshot-coverage fixture.

``relink`` mutates a *covered* column and stays clean; ``paint`` /
``shade`` mutate a private container outside the declared snapshot
coverage, and ``demote`` stores to a node ``__slots__`` field the
snapshot does not restore — all three must be flagged: a snapshot
restore would silently lose them.
"""


class Node:
    __slots__ = ("left", "right", "color")


class Tree:
    def __init__(self):
        self._left = []
        self._color = []

    def relink(self, i, j):
        self._left[i] = j  # covered column: clean in snapshot mode

    def paint(self, i):
        self._color[i] = 1  # uncovered container: flagged

    def shade(self, i):
        self._color.append(i)  # uncovered container growth: flagged

    def demote(self, node):
        node.color = 1  # uncovered node field: flagged

"""Clean twin of r001_bad: raises flow through the taxonomy."""

from repro.errors import InvalidParameterError, UnknownKeyError

__all__ = ["lookup", "positive"]


def lookup(table, key):
    if key not in table:
        raise UnknownKeyError(key)
    return table[key]


def positive(x):
    if x <= 0:
        raise InvalidParameterError("must be positive")
    if not isinstance(x, int):
        raise TypeError("int required")  # allowed: programming error
    return x

"""Planted R102: host-side poke() called from inside a step program."""

from repro.pram.machine import Machine
from repro.pram.memory import WritePolicy
from repro.pram.ops import Read, Write

__all__ = ["run"]


def _cheater(i, mem):
    v = yield Read(("x", i))
    mem.poke(("x", i), v + 1)  # planted: bypasses end-of-step commit
    yield Write(("done", i), 1)


def run(n):
    machine = Machine(policy=WritePolicy.PRIORITY)
    for i in range(n):
        machine.spawn(_cheater(i, machine.memory))
    return machine.run()

"""Planted R004 violations: interior mutations outside the journal."""

__all__ = ["Tree"]


class Tree:
    def __init__(self):
        self._left = []
        self._right = []
        self._journal = None

    def splice(self, a, b):  # planted: unjournaled column store
        self._left[a] = b
        self._right[b] = a

    def grow(self):  # planted: unjournaled column append
        self._left.append(-1)
        self._right.append(-1)

    def relink(self, node, child):  # planted: unjournaled node store
        node.left = child

    def guarded(self, a, b):  # clean: references the journal seam
        self._journal.record(a)
        self._left[a] = b

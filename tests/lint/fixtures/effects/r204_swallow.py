"""R204(b) fixture: the first handler swallows the whole taxonomy; the
second is broad but re-raises, and the third catches narrowly — only
the first is a finding."""


class ReproError(Exception):
    pass


def swallow(op):
    try:
        return op()
    except Exception:
        return None


def reraise(op):
    try:
        return op()
    except Exception:
        raise


def narrow(op):
    try:
        return op()
    except KeyError:
        return None

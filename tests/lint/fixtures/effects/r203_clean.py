"""R203 clean twin: the kernel only writes slab columns (``parent`` is
in the fixture policy's column universe) and reads the clock is *not*
involved — pure chunk arithmetic."""


def _kernel(parent, lo, hi):
    for i in range(lo, hi):
        parent[i] = i - lo
    return hi - lo


def worker_main(conn):
    while True:
        task = conn.recv()
        if task is None:
            break
        conn.send(_kernel(task.parent, task.lo, task.hi))

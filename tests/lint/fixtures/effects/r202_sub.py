"""R202 fixture, subclass half: ``FastTree`` inherits ``batch_link``
but overrides ``_link_core`` *without* the journal seam — the violation
is only visible across the subclass boundary, because the entry point's
``self._link_core`` dispatch must include the override."""

from r202_base import BaseTree


class FastTree(BaseTree):
    def _link_core(self, edges):
        for u, v in edges:
            self.left[u] = v
        return len(edges)

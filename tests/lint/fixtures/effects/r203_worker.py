"""R203 fixture: the worker loop's closure draws RNG and spawns — both
forbidden inside a chunk kernel even when the draw is seeded (workers
must be replayable from their task messages alone)."""

import random


def _audit(path, rows):
    with open(path, "a") as fh:
        fh.write(repr(rows))


def _kernel(view, lo, hi):
    acc = view[lo:hi]
    _audit("/tmp/audit.log", acc)
    return acc


def worker_main(conn, seed):
    rng = random.Random(seed)
    while True:
        task = conn.recv()
        if task is None:
            break
        if rng.random() < 0.5:
            continue
        conn.send(_kernel(task.view, task.lo, task.hi))

"""Planted fixture: a serve-style shard whose batch-apply path reads
the wall clock two calls down (R201 for the ``execute_window`` entry).

Models the exact bug the ``repro.serve`` registration guards against:
the sync core must take ``now`` as an argument — a clock read inside
the window path would make shed/deadline decisions unreplayable.
"""

import time


class MiniShard:
    def __init__(self):
        self.applied = []

    def execute_window(self, window):
        out = []
        for req in window:
            out.append(self._apply_one(req))
        return out

    def _apply_one(self, req):
        if self._expired(req):
            return "timeout"
        self.applied.append(req)
        return "applied"

    def _expired(self, req):
        return time.monotonic() > req[1]

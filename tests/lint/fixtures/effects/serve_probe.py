"""Planted fixture: a quarantine-style prober.

``bisect`` is registered as a *module-level* entry point (empty
``class_name``), mirroring ``repro.serve.quarantine.quarantine_bisect``.
Two findings are planted:

* ``probe``'s broad except swallows the taxonomy (R204) — the real
  prober carries an allowlist justification for exactly this shape;
  the fixture test checks the finding fires *without* the allowlist
  and is dropped *with* it.
* ``probe`` mutates the ``parent`` column with no seam on the path
  from ``bisect`` (R202): a probe that commits instead of rolling
  back is the bug class the real prober's unconditional rollback
  prevents.
"""


def bisect(tree, payload):
    good = []
    for i, entry in enumerate(payload):
        if probe(tree, entry):
            good.append(i)
    return good


def probe(tree, entry):
    try:
        tree.parent[entry[0]] = entry[1]
        return True
    except Exception:
        return False

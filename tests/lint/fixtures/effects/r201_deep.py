"""R201 fixture: nondeterminism hidden two calls below the entry.

``Store.batch_put`` itself is clean — the module-level RNG draw sits in
``_shuffle``, reached only via ``_plan`` — so a site-local rule (R002's
scope) cannot see it; only the call-path closure can.
"""

import random


def _shuffle(items):
    random.shuffle(items)
    return items


def _plan(items):
    return _shuffle(list(items))


class Store:
    def __init__(self, seed):
        self._rng = random.Random(seed)
        self._data = {}

    def batch_put(self, pairs):
        for k, v in _plan(list(pairs)):
            self._data[k] = v
        return len(pairs)

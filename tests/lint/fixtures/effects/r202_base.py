"""R202 fixture, base half: the entry lives here and is *guarded* for
the base implementation (the core references the journal seam), so the
reference backend alone is clean."""


class BaseTree:
    def __init__(self):
        self._journal = []
        self.left = {}

    def batch_link(self, edges):
        return self._link_core(list(edges))

    def _link_core(self, edges):
        for u, v in edges:
            self._journal.append((u, self.left.get(u)))
            self.left[u] = v
        return len(edges)

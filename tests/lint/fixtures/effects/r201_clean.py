"""R201 clean twin: the same two-deep shape, but every draw goes
through the sanctioned per-instance seeded rng and the set is sorted
before iteration."""

import random


class Store:
    def __init__(self, seed):
        self._rng = random.Random(seed)
        self._data = {}

    def _coin(self):
        return self._rng.random() < 0.5

    def _plan(self, items):
        keys = set(items)
        return [k for k in sorted(keys) if self._coin()]

    def batch_put(self, pairs):
        for k in self._plan([k for k, _v in pairs]):
            self._data[k] = None
        return len(pairs)

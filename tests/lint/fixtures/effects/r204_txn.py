"""R204(a) fixture: a mutation inside the transaction bracket targets
state outside the coverage universe (``_stats`` is not a column or node
field), so rollback would silently lose it.  The covered column write
in ``_apply`` is fine."""


class Tree:
    def __init__(self):
        self.parent = {}
        self._stats = {}

    def _txn_begin(self):
        pass

    def _txn_commit(self):
        pass

    def _apply(self, edges):
        for u, v in edges:
            self.parent[u] = v

    def _count(self, edges):
        self._stats["links"] = len(edges)

    def batch_link(self, edges):
        self._txn_begin()
        self._apply(list(edges))
        self._count(list(edges))
        self._txn_commit()

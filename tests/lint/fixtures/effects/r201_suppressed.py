"""R201 fixture with an inline pragma: same deep violation as
``r201_deep``, silenced at the offending line."""

import random


def _shuffle(items):
    random.shuffle(items)  # lint: ignore[R201]
    return items


class Store:
    def __init__(self):
        self._data = {}

    def batch_put(self, pairs):
        for k, v in _shuffle(list(pairs)):
            self._data[k] = v

"""Planted R001 violations: bare builtin raises."""

__all__ = ["lookup", "positive"]


def lookup(table, key):
    if key not in table:
        raise KeyError(key)  # planted: builtin raise
    return table[key]


def positive(x):
    if x <= 0:
        raise ValueError("must be positive")  # planted: builtin raise
    if not isinstance(x, int):
        raise TypeError("int required")  # allowed: programming error
    return x

"""Drifted flat side of the planted contraction-trace parity pair.

Planted drift against ``parity_contraction_ref.Trace``:

* ``set_rake_op`` renamed its ``op`` parameter to ``operation``;
* ``heal`` lost the ``tracker`` parameter;
* ``removal_kind`` is missing;
* ``sweep`` grew with no reference twin (and no allow-extra entry);
* ``value`` became a plain method instead of a property.
"""

__all__ = ["FlatTrace"]


class FlatTrace:
    def value(self):  # planted: property became a method
        return 0

    def size(self):
        return 0

    def set_leaf_label(self, nid, value):
        return 0

    def set_rake_op(self, nid, operation):  # planted: parameter drift
        return 0

    def heal(self, tokens):  # planted: parameter drift (tracker lost)
        return 0

    def death_record(self, pid):
        return None

    # planted: removal_kind missing

    def sweep(self):  # planted: extra public member
        pass

"""Reference side of the planted contraction-trace R003 parity pair.

Shaped like :class:`repro.contraction.rake_tree.RakeTrace`'s trace
protocol (value / size / set_leaf_label / set_rake_op / heal /
death_record / removal_kind, plus the reference-only ``new_node``).
"""

__all__ = ["Trace"]


class Trace:
    def new_node(self, kind, tnode, label):
        return None

    @property
    def value(self):
        return 0

    def size(self):
        return 0

    def set_leaf_label(self, nid, value):
        return None

    def set_rake_op(self, nid, op):
        return None

    def heal(self, tokens, tracker=None):
        return 0

    def death_record(self, pid):
        return None

    def removal_kind(self, nid):
        return None

"""The repo-clean self-check: ``src/repro`` carries zero findings under
the full default rule set.

This is the tier-1 enforcement of every static invariant at once — a
new bare raise, RNG seam, parity drift, unjournaled splice, missing
``__all__`` or step-discipline race anywhere in the library fails this
test with the exact file:line finding in the assertion message.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.config import REPO_CONFIG
from repro.lint.engine import run_lint
from repro.lint.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_is_lint_clean():
    report = run_lint(
        REPO_ROOT, ["src/repro"], default_rules(REPO_CONFIG)
    )
    assert report.clean, "\n" + "\n".join(str(f) for f in report.findings)


def test_default_rule_ids_are_stable():
    ids = [rule.id for rule in default_rules(REPO_CONFIG)]
    assert ids == [
        "R001",
        "R002",
        "R003",
        "R004",
        "R005",
        "R101",
        "R102",
        "R103",
    ]

"""Asymptotic-shape assertions: the theorems' growth claims hold in the
simulated cost model (the quantitative versions live in benchmarks/)."""

import math
import random

import pytest

from repro.algebra.rings import INTEGER
from repro.analysis.fitting import best_model
from repro.baselines.naive_walk import activate_by_walking, deactivate_walk
from repro.contraction.dynamic import DynamicTreeContraction
from repro.listprefix.structure import IncrementalListPrefix
from repro.algebra.monoid import sum_monoid
from repro.pram.frames import SpanTracker
from repro.splitting.activation import activate, deactivate
from repro.splitting.rbsts import RBSTS
from repro.trees.builders import random_expression_tree


def test_activation_rounds_fit_loglog_not_log():
    """Theorem 2.1: for fixed |U|, rounds track log(|U| log n): the
    loglog model should explain them better than linear growth in depth."""
    ns = [1 << e for e in range(8, 19, 2)]
    rounds = []
    naive = []
    for n in ns:
        t = RBSTS(range(n), seed=n % 97)
        leaves = [t.leaf_at(i) for i in random.Random(n).sample(range(n), 4)]
        res = activate(t, leaves)
        rounds.append(res.rounds_total)
        deactivate(res)
        walk = activate_by_walking(leaves)
        naive.append(walk.rounds)
        deactivate_walk(walk)
    smart_fit = best_model(ns, rounds, candidates=("loglog", "log", "linear"))
    naive_fit = best_model(ns, naive, candidates=("loglog", "log", "linear"))
    assert naive_fit.model == "log"
    # Activation grows strictly slower than the naive walk.
    assert rounds[-1] - rounds[0] < (naive[-1] - naive[0]) / 2


def test_rbsts_depth_fits_log():
    ns = [1 << e for e in range(6, 15, 2)]
    depths = [RBSTS(range(n), seed=1).depth() for n in ns]
    assert best_model(ns, depths, candidates=("loglog", "log", "linear")).model == "log"


def test_batch_update_span_flat_in_n():
    """Theorem 4.1: span depends on n only through log log n."""
    spans = []
    for e in (8, 14):
        n = 1 << e
        tree = random_expression_tree(INTEGER, n, seed=e)
        engine = DynamicTreeContraction(tree, seed=e + 1)
        leaves = [l.nid for l in tree.leaves_in_order()]
        tracker = SpanTracker()
        engine.batch_set_leaf_values(
            [(nid, 0) for nid in random.Random(e).sample(leaves, 4)], tracker
        )
        spans.append(tracker.span)
    assert spans[1] <= spans[0] + 10  # 64x bigger n, nearly flat span


def test_prefix_batch_work_near_u_log_n():
    """Theorem 3.1 work optimality: work ≈ |U| log n up to constants."""
    n = 1 << 12
    lp = IncrementalListPrefix(sum_monoid(INTEGER), range(n), seed=0)
    hs = lp.handles()
    for k in (4, 32):
        tracker = SpanTracker()
        idxs = random.Random(k).sample(range(n), k)
        lp.batch_prefix([hs[i] for i in idxs], tracker)
        bound = k * math.log2(n)
        assert tracker.work <= 12 * bound
        assert tracker.span <= 3 * math.log2(k * math.log2(n)) + 12


def test_u_equals_one_update_is_loglog():
    """§1.2's note: |U| = O(1) updates run in O(log log n) expected."""
    spans = []
    ns = [1 << e for e in (8, 12, 16, 20)]
    for n in ns:
        lp = IncrementalListPrefix(sum_monoid(INTEGER), range(n), seed=3)
        tracker = SpanTracker()
        lp.batch_set([(lp.handle_at(n // 2), 99)], tracker)
        spans.append(tracker.span)
    # 4096x larger input: span changes by a few units only.
    assert spans[-1] - spans[0] <= 8
    # And stays far below log2(n) = 20.
    assert spans[-1] <= 20

"""Three-way cross-validation: the dynamic engine, the sequential
baseline and the recompute baseline must agree on every value through a
long shared request stream — and with link-cut trees on tree-shape
queries."""

import random

import pytest

from repro.algebra.rings import INTEGER
from repro.baselines.linkcut import LinkCutForest
from repro.baselines.recompute import RecomputeBaseline
from repro.baselines.sequential import SequentialContraction
from repro.contraction.dynamic import DynamicTreeContraction
from repro.trees.builders import random_expression_tree
from repro.trees.nodes import add_op, mul_op


@pytest.mark.parametrize("seed", [0, 1])
def test_three_engines_agree(seed):
    rng = random.Random(seed)
    trees = [random_expression_tree(INTEGER, 48, seed=seed) for _ in range(3)]
    dyn = DynamicTreeContraction(trees[0], seed=seed + 1)
    seq = SequentialContraction(trees[1], seed=seed + 1)
    rec = RecomputeBaseline(trees[2])
    engines = (dyn, seq, rec)
    for step in range(30):
        kind = rng.choice(["val", "op", "grow", "prune"])
        leaves = [l.nid for l in trees[0].leaves_in_order()]
        if kind == "val":
            updates = [
                (nid, rng.randint(-4, 4)) for nid in rng.sample(leaves, 3)
            ]
            for e in engines:
                e.batch_set_leaf_values(updates)
        elif kind == "op":
            internal = [
                n.nid for n in trees[0].nodes_preorder() if not n.is_leaf
            ]
            updates = [
                (nid, add_op() if rng.random() < 0.6 else mul_op())
                for nid in rng.sample(internal, 2)
            ]
            for e in engines:
                e.batch_set_ops(updates)
        elif kind == "grow":
            # Node ids are allocated deterministically per tree, so the
            # same request stream produces aligned ids across engines.
            reqs = [
                (nid, add_op(), rng.randint(-2, 2), rng.randint(-2, 2))
                for nid in rng.sample(leaves, 2)
            ]
            for e in engines:
                e.batch_grow(reqs)
        else:
            cands = [
                n.nid
                for n in trees[0].nodes_preorder()
                if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
            ]
            if len(cands) > 2:
                reqs = [(nid, rng.randint(-2, 2)) for nid in rng.sample(cands, 2)]
                for e in engines:
                    e.batch_prune(reqs)
        values = {dyn.value(), seq.value(), rec.value()}
        assert len(values) == 1, f"step {step}: engines disagree {values}"
        # Shared node ids must exist in all trees (aligned histories).
        probe = rng.choice([n.nid for n in trees[0].nodes_preorder()])
        q = {e.query_values([probe])[0] for e in engines}
        assert len(q) == 1


def test_linkcut_agrees_on_depths_and_lca():
    """Mirror the expression tree into a link-cut forest and compare
    depth and LCA answers with the Euler-tour machinery."""
    from repro.applications.lca import DynamicLCA

    rng = random.Random(5)
    tree = random_expression_tree(INTEGER, 80, seed=5)
    lca = DynamicLCA(tree, seed=6)
    forest = LinkCutForest()
    for node in tree.nodes_preorder():
        forest.make_node(node.nid)
    for node in tree.nodes_preorder():
        if node.parent is not None:
            forest.link(node.nid, node.parent.nid)
    ids = [n.nid for n in tree.nodes_preorder()]
    for _ in range(40):
        x, y = rng.sample(ids, 2)
        assert forest.lca(x, y) == lca.lca(x, y)
        assert forest.depth(x) == lca.tour.batch_depths([x])[0]

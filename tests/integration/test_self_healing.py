"""The §1.4 self-healing loop end-to-end: long randomized sessions of
concurrent wounds and heals, with every structure cross-checked against
brute-force oracles after every batch."""

import random

import pytest

from repro.algebra.rings import INTEGER, modular_ring
from repro.applications.euler import DynamicEulerTour
from repro.applications.lca import DynamicLCA
from repro.contraction.dynamic import DynamicTreeContraction
from repro.trees.builders import random_expression_tree
from repro.trees.expr import ExprTree
from repro.trees.nodes import add_op, mul_op
from repro.trees.traversal import euler_tour
from repro.trees.validate import check_tree


def leaf_pair_parents(tree):
    return [
        n.nid
        for n in tree.nodes_preorder()
        if not n.is_leaf and n.left.is_leaf and n.right.is_leaf
    ]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_long_contraction_session(seed):
    rng = random.Random(seed)
    tree = random_expression_tree(INTEGER, 64, seed=seed)
    engine = DynamicTreeContraction(tree, seed=seed + 1)
    for step in range(80):
        kind = rng.choice(["val", "op", "grow", "prune", "query"])
        if kind == "val":
            leaves = [l.nid for l in tree.leaves_in_order()]
            engine.batch_set_leaf_values(
                [
                    (nid, rng.randint(-3, 3))
                    for nid in rng.sample(leaves, min(5, len(leaves)))
                ]
            )
        elif kind == "op":
            internal = [n.nid for n in tree.nodes_preorder() if not n.is_leaf]
            if internal:
                engine.batch_set_ops(
                    [
                        (nid, add_op() if rng.random() < 0.7 else mul_op())
                        for nid in rng.sample(internal, min(3, len(internal)))
                    ]
                )
        elif kind == "grow":
            leaves = [l.nid for l in tree.leaves_in_order()]
            engine.batch_grow(
                [
                    (nid, add_op(), rng.randint(-2, 2), rng.randint(-2, 2))
                    for nid in rng.sample(leaves, min(4, len(leaves)))
                ]
            )
        elif kind == "prune":
            cands = leaf_pair_parents(tree)
            if len(cands) > 3:
                engine.batch_prune(
                    [(nid, rng.randint(-2, 2)) for nid in rng.sample(cands, 2)]
                )
        else:
            ids = rng.sample([n.nid for n in tree.nodes_preorder()], 4)
            got = engine.query_values(ids)
            assert got == [tree.evaluate(at=nid) for nid in ids]
        # Full oracle checks after every single batch.
        check_tree(tree)
        engine.check_consistency()


@pytest.mark.parametrize("seed", [0, 1])
def test_tour_and_contraction_together(seed):
    """Drive one dynamic tree shared by the contraction engine, the
    Euler tour and the LCA structure simultaneously."""
    rng = random.Random(seed + 50)
    tree = random_expression_tree(INTEGER, 32, seed=seed)
    engine = DynamicTreeContraction(tree, seed=seed + 1)
    tour = DynamicEulerTour(tree, seed=seed + 2)
    for step in range(40):
        if rng.random() < 0.6:
            leaves = [l.nid for l in tree.leaves_in_order()]
            targets = rng.sample(leaves, min(2, len(leaves)))
            created = engine.batch_grow(
                [(nid, add_op(), 1, rng.randint(-2, 2)) for nid in targets]
            )
            tour.batch_grow(
                [(nid, l, r) for nid, (l, r) in zip(targets, created)]
            )
        else:
            cands = leaf_pair_parents(tree)
            if len(cands) > 2:
                picks = rng.sample(cands, 2)
                recs = [
                    (nid, tree.node(nid).left.nid, tree.node(nid).right.nid)
                    for nid in picks
                ]
                engine.batch_prune([(nid, 1) for nid in picks])
                tour.batch_prune(recs)
        assert engine.value() == tree.evaluate()
        assert tour.tour_nodes() == [e.nid for e in euler_tour(tree)]


def test_modular_ring_session():
    ring = modular_ring(1009)
    rng = random.Random(7)
    tree = random_expression_tree(ring, 48, seed=7)
    engine = DynamicTreeContraction(tree, seed=8)
    for _ in range(30):
        leaves = [l.nid for l in tree.leaves_in_order()]
        engine.batch_set_leaf_values(
            [(nid, rng.randint(0, 1008)) for nid in rng.sample(leaves, 4)]
        )
        assert engine.value() == tree.evaluate()


def test_growth_from_singleton_to_large_and_back():
    rng = random.Random(11)
    tree = ExprTree(INTEGER, root_value=1)
    engine = DynamicTreeContraction(tree, seed=12)
    # Grow to ~200 leaves.
    while len(tree.leaves_in_order()) < 200:
        leaves = [l.nid for l in tree.leaves_in_order()]
        engine.batch_grow(
            [
                (nid, add_op(), 1, 1)
                for nid in rng.sample(leaves, min(8, len(leaves)))
            ]
        )
    engine.check_consistency()
    # Shrink back below 20 leaves.
    while len(tree.leaves_in_order()) > 20:
        cands = leaf_pair_parents(tree)
        engine.batch_prune(
            [(nid, 1) for nid in rng.sample(cands, min(6, len(cands)))]
        )
    engine.check_consistency()
    assert engine.value() == tree.evaluate()

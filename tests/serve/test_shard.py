"""Shard core: window semantics, admission parity, shedding, deadlines."""

from __future__ import annotations

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.resilience.executor import ResiliencePolicy
from repro.resilience.faults import FaultPlan
from repro.serve.requests import Request, ServePolicy
from repro.serve.shard import Shard

MONOID = sum_monoid(INTEGER)


def make_shard(values=(1, 2, 3, 4, 5), *, seed=0, plan=None, **policy_kw):
    policy_kw.setdefault("resilience", ResiliencePolicy(ladder=("flat",)))
    return Shard(
        0, MONOID, list(values), seed=seed,
        policy=ServePolicy(**policy_kw), plan=plan,
    )


def req(req_id, kind, *args, deadline=None, shard=0):
    return Request(
        req_id=req_id, shard=shard, kind=kind, args=args, deadline=deadline
    )


# ---------------------------------------------------------------------------
# window semantics
# ---------------------------------------------------------------------------


def test_window_phases_apply_in_canonical_order():
    shard = make_shard([1, 2, 3, 4, 5])
    # Arrival order insert-delete-set; execution order set, delete, insert
    # — each phase's positions read against the state at its start.
    window = [
        req(0, "insert", 0, 100),
        req(1, "delete", 4),
        req(2, "set", 0, 999),
    ]
    out = shard.execute_window(window, now=0.0)
    assert all(out[i].status == "applied" for i in range(3))
    # set: [999,2,3,4,5]; delete pos 4: [999,2,3,4]; insert 100@0.
    assert shard.values() == [100, 999, 2, 3, 4]
    assert [entry[0] for entry in shard.applied_log] == [
        "set", "delete", "insert"
    ]


def test_window_matches_sequential_oracle():
    shard = make_shard([1, 2, 3, 4, 5])
    window = [
        req(0, "insert", 0, 10),
        req(1, "insert", 3, 20),
        req(2, "insert", 0, 30),
        req(3, "delete", 1),
        req(4, "delete", 3),
        req(5, "set", 2, 7),
    ]
    out = shard.execute_window(window, now=0.0)
    assert all(out[i].status == "applied" for i in range(6))
    # Oracle: set {2:7} -> [1,2,7,4,5]; delete {1,3} -> [1,7,5];
    # insert phase sees length 3: 10@0,30@0 (request order), 20@3.
    assert shard.values() == [10, 30, 1, 7, 5, 20]
    shard.check_invariants()


def test_admission_rejects_via_shared_validators():
    shard = make_shard([1, 2, 3])
    window = [
        req(0, "insert", 99, 5),     # position-out-of-range
        req(1, "delete", 0),
        req(2, "delete", 0),          # duplicate-handle
        req(3, "set", 99, 5),         # unknown-handle
        req(4, "insert", 1, 50),      # fine
    ]
    out = shard.execute_window(window, now=0.0)
    assert out[0].status == "rejected"
    assert out[0].reason == "position-out-of-range"
    assert out[1].status == "applied"
    assert out[2].status == "rejected"
    assert out[2].reason == "duplicate-handle"
    assert out[3].status == "rejected"
    assert out[3].reason == "unknown-handle"
    assert out[4].status == "applied"
    assert shard.values() == [2, 50, 3]


def test_delete_all_leaves_rejected_whole_phase():
    shard = make_shard([1, 2])
    window = [req(0, "delete", 0), req(1, "delete", 1)]
    out = shard.execute_window(window, now=0.0)
    assert out[0].reason == "delete-all-leaves"
    assert out[1].reason == "delete-all-leaves"
    assert shard.values() == [1, 2]


# ---------------------------------------------------------------------------
# queue overload: bounded queue + seeded deterministic shedding
# ---------------------------------------------------------------------------


def _offer_run(seed, n=64):
    shard = make_shard(
        seed=seed, queue_capacity=16, shed_highwater=0.25
    )
    decisions = []
    for i in range(n):
        refusal = shard.offer(req(i, "insert", 0, i), now=0.0)
        decisions.append("-" if refusal is None else refusal.status)
    return shard, decisions


def test_shedding_is_seed_deterministic():
    _, first = _offer_run(seed=42)
    _, second = _offer_run(seed=42)
    assert first == second
    assert "shed" in first  # the run actually exercised shedding
    _, other = _offer_run(seed=43)
    assert other != first  # a different seed sheds differently


def test_full_queue_always_sheds():
    shard, decisions = _offer_run(seed=7, n=200)
    assert shard.pending <= shard.policy.queue_capacity
    # Every offer past a full queue is shed deterministically.
    assert decisions.count("-") == shard.stats["enqueued"]
    assert shard.stats["sheds"] > 0


def test_shed_decisions_survive_interleaving():
    """Per-shard decisions depend only on the shard's own arrival
    order, not on how other shards' traffic interleaves globally."""
    a1 = Shard(1, MONOID, [1, 2], seed=9,
               policy=ServePolicy(queue_capacity=8, shed_highwater=0.25))
    b1 = Shard(2, MONOID, [1, 2], seed=9,
               policy=ServePolicy(queue_capacity=8, shed_highwater=0.25))
    solo = [a1.offer(req(i, "insert", 0, i, shard=1), 0.0) for i in range(32)]
    a2 = Shard(1, MONOID, [1, 2], seed=9,
               policy=ServePolicy(queue_capacity=8, shed_highwater=0.25))
    b2 = Shard(2, MONOID, [1, 2], seed=9,
               policy=ServePolicy(queue_capacity=8, shed_highwater=0.25))
    mixed = []
    for i in range(32):
        b2.offer(req(1000 + i, "insert", 0, i, shard=2), 0.0)
        mixed.append(a2.offer(req(i, "insert", 0, i, shard=1), 0.0))
    assert [r is None or r.status for r in solo] == [
        r is None or r.status for r in mixed
    ]
    assert b1 is not b2  # silence linters; b1 exercised nothing


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


def test_expired_request_refused_at_offer_and_at_execution():
    shard = make_shard()
    assert shard.offer(req(0, "insert", 0, 1, deadline=5.0), now=6.0).status \
        == "timeout"
    out = shard.execute_window([req(1, "insert", 0, 1, deadline=5.0)], now=6.0)
    assert out[1].status == "timeout"
    assert shard.values() == [1, 2, 3, 4, 5]


def test_retry_backoff_expires_later_phase_mid_window():
    """Deadline-exceeded mid-batch: simulated backoff charged by an
    earlier phase's retries advances the window's effective clock past
    a later-phase request's deadline — it times out instead of being
    applied late."""
    plan = FaultPlan(3, rate=1.0, sticky_rate=0.0)  # transient faults
    shard = make_shard(
        [1, 2, 3, 4, 5],
        plan=plan,
        resilience=ResiliencePolicy(
            ladder=("flat",), max_retries=2, backoff_base_s=10.0
        ),
    )
    window = [
        req(0, "set", 0, 50),                      # no deadline: retries OK
        req(1, "insert", 0, 60, deadline=5.0),      # dies if set-phase retries
    ]
    out = shard.execute_window(window, now=0.0)
    assert out[0].status == "applied"
    assert shard.session.stats["retries"] >= 1  # the fault really fired
    assert out[1].status == "timeout"
    assert shard.values() == [50, 2, 3, 4, 5]
    shard.check_invariants()


def test_tight_deadline_caps_retry_budget():
    """A deadline too tight to afford backoff reduces the granted
    retries (here: to zero), so a sticky fault fails the phase instead
    of burning budget the deadline does not have."""
    plan = FaultPlan(1, rate=1.0, sticky_rate=1.0)  # sticky: every attempt
    shard = make_shard(
        [1, 2, 3, 4, 5],
        plan=plan,
        resilience=ResiliencePolicy(
            ladder=("flat",), max_retries=3, backoff_base_s=10.0
        ),
    )
    out = shard.execute_window(
        [req(0, "insert", 0, 9, deadline=1.0)], now=0.0
    )
    assert out[0].status == "failed"
    # max_retries=3 was configured, but the 1s budget affords none.
    assert shard.session.stats["attempts"] == 1
    assert shard.values() == [1, 2, 3, 4, 5]
    # The window-scoped cap is restored afterwards.
    assert shard.session.executor.policy.max_retries == 3


def test_retry_budget_computation():
    shard = make_shard(
        resilience=ResiliencePolicy(
            ladder=("flat",), max_retries=3,
            backoff_base_s=1.0, backoff_factor=2.0,
        )
    )
    policy = shard.policy.resilience
    no_deadline = [req(0, "insert", 0, 1)]
    assert shard._retry_budget(no_deadline, 0.0, policy) == 3
    # Backoff schedule: 1, 2, 4 (cumulative 1, 3, 7).
    cases = [(0.5, 0), (1.0, 1), (3.0, 2), (6.9, 2), (7.0, 3), (99.0, 3)]
    for budget, want in cases:
        reqs = [req(0, "insert", 0, 1, deadline=budget)]
        assert shard._retry_budget(reqs, 0.0, policy) == want, budget


# ---------------------------------------------------------------------------
# reads from the pinned epoch
# ---------------------------------------------------------------------------


def test_reads_answer_from_pinned_epoch():
    shard = make_shard([1, 2, 3, 4])
    assert shard.read(req(0, "total"), 0.0).result == 10
    assert shard.read(req(1, "prefix", 2), 0.0).result == 6
    assert shard.read(req(2, "range", 1, 3), 0.0).result == 9
    assert shard.read(req(3, "len"), 0.0).result == 4
    assert shard.read(req(4, "prefix", 9), 0.0).status == "rejected"
    assert shard.read(req(5, "range", 3, 1), 0.0).status == "rejected"
    assert shard.read(req(6, "total", deadline=1.0), 2.0).status == "timeout"


def test_reads_work_on_every_rung():
    for ladder in (("flat",), ("reference",), ("sequential",)):
        shard = make_shard(
            [5, 6, 7], resilience=ResiliencePolicy(ladder=ladder)
        )
        assert shard.session.rung == ladder[0]
        assert shard.read(req(0, "total"), 0.0).result == 18
        assert shard.read(req(1, "prefix", 1), 0.0).result == 11

"""Poisoned-batch quarantine: bisection correctness and probe purity."""

from __future__ import annotations

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.resilience.executor import ResiliencePolicy, ResilientListSession
from repro.serve.loadgen import PoisonPill
from repro.serve.quarantine import quarantine_bisect
from repro.serve.requests import Request, ServePolicy
from repro.serve.shard import Shard

MONOID = sum_monoid(INTEGER)

RUNGS = ("flat", "reference", "sequential")


def session_on(rung, values=(1, 2, 3, 4, 5)):
    return ResilientListSession(
        MONOID, list(values), seed=5,
        policy=ResiliencePolicy(ladder=(rung,)),
    )


@pytest.mark.parametrize("rung", RUNGS)
def test_bisection_isolates_exactly_the_pills(rung):
    session = session_on(rung)
    payload = [
        (0, 10), (1, PoisonPill(1)), (2, 30), (3, 40),
        (4, PoisonPill(2)), (5, 60), (0, 70), (2, 80),
    ]
    before = session.values()
    result = quarantine_bisect(session, "insert", payload, max_probes=64)
    assert result.poisoned == (1, 4)
    assert result.good == (0, 2, 3, 5, 6, 7)
    assert not result.exhausted
    # Probing left zero trace.
    assert session.values() == before
    session.check_invariants()


@pytest.mark.parametrize("rung", RUNGS)
@pytest.mark.parametrize("verb", ("insert", "set"))
def test_single_pill_any_verb(rung, verb):
    session = session_on(rung)
    payload = [(0, 5), (1, PoisonPill(9)), (2, 6)]
    result = quarantine_bisect(session, verb, payload, max_probes=64)
    assert result.poisoned == (1,)
    assert result.good == (0, 2)


def test_all_good_batch_costs_one_probe():
    session = session_on("flat")
    result = quarantine_bisect(
        session, "insert", [(0, 1), (1, 2)], max_probes=64
    )
    assert result.poisoned == ()
    assert result.good == (0, 1)
    # known-failing top level skips the first probe; the two halves +
    # the joint re-check account for the rest.
    assert result.probes <= 3


def test_exhausted_budget_fails_safe():
    """When probes run out, the unresolved remainder is classified
    poisoned — the service may over-reject, never under-reject."""
    session = session_on("flat")
    payload = [(i, PoisonPill(i) if i % 3 == 0 else i) for i in range(12)]
    result = quarantine_bisect(session, "insert", payload, max_probes=2)
    assert result.exhausted
    assert result.probes <= 2
    # Everything either good-with-joint-probe-pass or poisoned; with a
    # 2-probe budget nothing can clear, and no pill is ever in `good`.
    pills = {i for i, (_, v) in enumerate(payload)
             if isinstance(v, PoisonPill)}
    assert pills <= set(result.poisoned)
    assert set(result.good).isdisjoint(pills)


def test_shard_quarantine_commits_exactly_the_oracle_subset():
    """End-to-end: a window with pills commits precisely the innocent
    requests (committed subset == oracle), acks the pills as
    quarantined, and the shard state equals replaying only the good
    subset."""
    shard = Shard(
        0, MONOID, [1, 2, 3, 4, 5], seed=0,
        policy=ServePolicy(
            resilience=ResiliencePolicy(ladder=("flat",))
        ),
    )
    window = [
        Request(req_id=0, shard=0, kind="insert", args=(0, 100)),
        Request(req_id=1, shard=0, kind="insert", args=(1, PoisonPill(7))),
        Request(req_id=2, shard=0, kind="insert", args=(2, 300)),
        Request(req_id=3, shard=0, kind="set", args=(4, PoisonPill(8))),
        Request(req_id=4, shard=0, kind="set", args=(0, 900)),
    ]
    out = shard.execute_window(window, now=0.0)
    assert out[0].status == "applied"
    assert out[1].status == "quarantined"
    assert out[1].reason == "poisoned-payload"
    assert out[2].status == "applied"
    assert out[3].status == "quarantined"
    assert out[4].status == "applied"
    # Oracle replay of ONLY the good requests: set {0:900} ->
    # [900,2,3,4,5]; insert 100@0, 300@2 -> [100,900,2,300,3,4,5].
    assert shard.values() == [100, 900, 2, 300, 3, 4, 5]
    shard.check_invariants()
    assert shard.stats["quarantines"] == 2  # one per poisoned phase
    assert shard.stats["quarantined"] == 2
    # The applied log records exactly the committed req_ids.
    logged = [rid for _, _, ids in shard.applied_log for rid in ids]
    assert sorted(logged) == [0, 2, 4]


def test_quarantine_preserves_rng_parity():
    """Probes must not consume structure randomness: after quarantine,
    committing the good subset leaves the tree in the same state as a
    run that never saw the pills at all."""
    shard = Shard(
        0, MONOID, [1, 2, 3], seed=0,
        policy=ServePolicy(resilience=ResiliencePolicy(ladder=("flat",))),
    )
    twin = Shard(
        0, MONOID, [1, 2, 3], seed=0,
        policy=ServePolicy(resilience=ResiliencePolicy(ladder=("flat",))),
    )
    shard.execute_window(
        [
            Request(req_id=0, shard=0, kind="insert", args=(0, 10)),
            Request(req_id=1, shard=0, kind="insert", args=(1, PoisonPill())),
            Request(req_id=2, shard=0, kind="insert", args=(2, 30)),
        ],
        now=0.0,
    )
    twin.execute_window(
        [
            Request(req_id=0, shard=0, kind="insert", args=(0, 10)),
            Request(req_id=2, shard=0, kind="insert", args=(2, 30)),
        ],
        now=0.0,
    )
    assert shard.values() == twin.values()
    assert shard.session.rng_state() == twin.session.rng_state()

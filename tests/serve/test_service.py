"""Asyncio BatchService end-to-end: coalescing, sharding, lifecycle."""

from __future__ import annotations

import asyncio

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import InvalidParameterError
from repro.resilience.executor import ResiliencePolicy
from repro.serve.loadgen import generate_specs, run_closed_loop, spec_args
from repro.serve.requests import ServePolicy
from repro.serve.service import BatchService

MONOID = sum_monoid(INTEGER)


def run(coro):
    return asyncio.run(coro)


def make_policy(**kw):
    kw.setdefault("resilience", ResiliencePolicy(ladder=("flat",)))
    return ServePolicy(**kw)


def test_writes_coalesce_into_batch_windows():
    async def scenario():
        policy = make_policy(max_batch=8, max_wait_s=0.01)
        async with BatchService(
            MONOID, {0: [1, 2, 3]}, policy=policy
        ) as svc:
            # Submit concurrently so the latency window catches them all.
            responses = await asyncio.gather(
                svc.submit(0, "insert", 0, 10),
                svc.submit(0, "insert", 1, 20),
                svc.submit(0, "set", 0, 99),
            )
            assert [r.status for r in responses] == ["applied"] * 3
            total = await svc.submit(0, "total")
            assert total.result == 99 + 20 + 2 + 3 + 10
            stats = svc.stats()[0]
            assert stats["applied"] == 3
            # Coalescing: 3 concurrent writes used fewer than 3 windows.
            assert stats["windows"] < 3
        return True

    assert run(scenario())


def test_shards_are_isolated_trees():
    async def scenario():
        async with BatchService(
            MONOID, {0: [1, 2], 7: [100, 200]}, policy=make_policy()
        ) as svc:
            await svc.submit(0, "insert", 0, 50)
            t0 = await svc.submit(0, "total")
            t7 = await svc.submit(7, "total")
            assert t0.result == 53
            assert t7.result == 300
            assert svc.stats()[7]["windows"] == 0
            with pytest.raises(InvalidParameterError):
                await svc.submit(3, "total")
        return True

    assert run(scenario())


def test_reads_never_queue_and_see_committed_state_only():
    async def scenario():
        policy = make_policy(max_batch=64, max_wait_s=0.02)
        async with BatchService(MONOID, {0: [5, 5, 5]}, policy=policy) as svc:
            write = asyncio.ensure_future(svc.submit(0, "insert", 0, 1000))
            # A read racing the open window answers immediately from the
            # pinned pre- or post-window epoch — never a torn state.
            read = await svc.submit(0, "total")
            assert read.result in (15, 1015)
            await write
            assert (await svc.submit(0, "total")).result == 1015
        return True

    assert run(scenario())


def test_size_trigger_fires_before_latency_deadline():
    async def scenario():
        policy = make_policy(max_batch=2, max_wait_s=60.0)
        async with BatchService(MONOID, {0: [1]}, policy=policy) as svc:
            # max_wait_s is 60s: only the size trigger can fire in time.
            responses = await asyncio.wait_for(
                asyncio.gather(
                    svc.submit(0, "insert", 0, 2),
                    svc.submit(0, "insert", 0, 3),
                ),
                timeout=5.0,
            )
            assert [r.status for r in responses] == ["applied", "applied"]
        return True

    assert run(scenario())


def test_close_resolves_stranded_writes():
    async def scenario():
        policy = make_policy(max_batch=64, max_wait_s=60.0)
        svc = BatchService(MONOID, {0: [1, 2]}, policy=policy)
        await svc.start()
        pending = asyncio.ensure_future(svc.submit(0, "insert", 0, 9))
        await asyncio.sleep(0)  # let the submit enqueue
        await svc.close()
        resp = await asyncio.wait_for(pending, timeout=5.0)
        # Either the drain applied it or close refused it — never a hang.
        assert resp.status in ("applied", "failed")
        await svc.close()  # idempotent
        return True

    assert run(scenario())


def test_rejections_and_refusals_propagate_to_awaiters():
    async def scenario():
        policy = make_policy(default_deadline_s=100.0)
        async with BatchService(MONOID, {0: [1, 2, 3]}, policy=policy) as svc:
            bad = await svc.submit(0, "insert", 99, 5)
            assert bad.status == "rejected"
            assert bad.reason == "position-out-of-range"
            late = await svc.submit(0, "insert", 0, 5, deadline_s=-1.0)
            assert late.status == "timeout"
        return True

    assert run(scenario())


def test_closed_loop_loadgen_against_live_service():
    async def scenario():
        n_shards = 2
        length = 8
        policy = make_policy(max_batch=8, max_wait_s=0.002,
                             queue_capacity=512, shed_highwater=1.0)
        shard_values = {
            sid: list(range(1, length + 1)) for sid in range(n_shards)
        }
        async with BatchService(MONOID, shard_values, policy=policy) as svc:
            specs = generate_specs(
                seed=17, n_requests=80, n_shards=n_shards, zipf_s=1.1
            )
            responses = await run_closed_loop(svc, specs, concurrency=8)
            assert len(responses) == len(specs)
            statuses = {r.status for r in responses}
            # Headroom config: nothing shed, nothing failed.
            assert statuses <= {"applied", "rejected"}
            assert sum(r.status == "applied" for r in responses) > 0
            for sid in range(n_shards):
                svc.shards[sid].check_invariants()
            # spec_args normalizes in-range positions, so rejections can
            # only come from batch-level validation (e.g. dup deletes).
            for r in responses:
                if r.status == "rejected":
                    assert r.reason in (
                        "duplicate-handle", "delete-all-leaves"
                    )
        return True

    assert run(scenario())


def test_loadgen_specs_are_seed_stable():
    a = generate_specs(seed=3, n_requests=40, n_shards=4, poison_rate=0.1)
    b = generate_specs(seed=3, n_requests=40, n_shards=4, poison_rate=0.1)
    assert [(s.shard, s.kind, s.raw, s.invalid) for s in a] == [
        (s.shard, s.kind, s.raw, s.invalid) for s in b
    ]
    c = generate_specs(seed=4, n_requests=40, n_shards=4, poison_rate=0.1)
    assert [(s.shard, s.kind) for s in a] != [(s.shard, s.kind) for s in c]
    # Zipf skew: shard 0 is the hottest.
    counts = [sum(s.shard == i for s in a) for i in range(4)]
    assert counts[0] == max(counts)
    # spec_args keeps valid specs in range.
    for spec in a:
        if spec.invalid or spec.kind in ("total", "len"):
            continue
        args = spec_args(spec, length=8)
        assert all(0 <= p <= 8 for p in args[:1] if isinstance(p, int))

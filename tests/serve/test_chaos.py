"""Chaos-harness gate + pinned serve-corpus replay.

The chaos gate (``run_chaos`` / ``chaos_one``) is the PR's acceptance
oracle: under injected faults, poison, overload and deadline churn the
service must never lose or double-apply an acked batch, never corrupt
shard state (``check_invariants`` + sequential-oracle parity), shed and
reject deterministically per seed, and quarantine exactly the poisoned
requests.  The ``pinned-serve-*`` corpus entries freeze four regimes
(shed, quarantine, demotion, breaker) digest-for-digest.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.serve.chaos import (
    CORPUS_SCHEMA,
    ChaosConfig,
    chaos_one,
    config_for_seed,
    replay_serve_entry,
    run_chaos,
)
from repro.testing.corpus import corpus_paths, default_corpus_dir

# Seeds chosen (scan over 0..79, all green) to jointly cover every
# behaviour regime: quarantine+shed (2), demotion (10), timeout (22),
# breaker-open/circuit-open/failed (36).
GATE_SEEDS = (2, 10, 22, 36)


@pytest.mark.parametrize("seed", GATE_SEEDS)
def test_chaos_gate_holds_and_is_digest_deterministic(seed):
    report = chaos_one(seed, 150, save=False, verbose=False)
    assert report.ok, f"seed {seed}: {report.failure}"
    assert len(report.digest) == 16


def test_gate_seeds_jointly_cover_the_failure_matrix():
    observed = {}
    for seed in GATE_SEEDS:
        report = run_chaos(config_for_seed(seed, 150))
        assert report.ok, f"seed {seed}: {report.failure}"
        for cls, hit in report.observed.items():
            observed[cls] = observed.get(cls, False) or bool(hit)
    for cls in ("applied", "rejected", "shed", "timeout", "quarantined",
                "failed", "breaker-open", "demotion", "fault-fired"):
        assert observed.get(cls), f"gate seeds never exercised {cls!r}"


def test_quarantine_isolates_exactly_the_poisoned_requests():
    cfg = ChaosConfig(
        seed=101, n_requests=80, n_shards=2, poison_rate=0.15,
        invalid_rate=0.0, fault_rate=0.0, shed_highwater=1.0,
        queue_capacity=512,
    )
    report = run_chaos(cfg)
    assert report.ok, report.failure
    assert report.statuses.get("quarantined", 0) > 0
    # run_chaos's own audit already asserts quarantined == poisoned
    # spec ids and that no pill ever committed; re-check the pinned
    # id list is exactly the poisoned specs for this config.
    assert report.statuses.get("quarantined", 0) == len(
        report.quarantined_ids
    )


def test_clean_config_applies_everything():
    cfg = ChaosConfig(
        seed=5, n_requests=60, n_shards=2, poison_rate=0.0,
        invalid_rate=0.0, fault_rate=0.0, shed_highwater=1.0,
        queue_capacity=512, deadline_s=None,
    )
    report = run_chaos(cfg)
    assert report.ok, report.failure
    assert report.statuses.get("shed", 0) == 0
    assert report.statuses.get("failed", 0) == 0
    assert report.statuses.get("quarantined", 0) == 0


# ---------------------------------------------------------------------------
# pinned corpus replay
# ---------------------------------------------------------------------------


def serve_corpus_paths():
    return corpus_paths(default_corpus_dir(), schema=CORPUS_SCHEMA)


def test_corpus_has_the_four_pinned_regimes():
    paths = serve_corpus_paths()
    pinned = [p for p in paths if os.path.basename(p).startswith(
        "pinned-serve-")]
    assert len(pinned) >= 4
    notes = []
    for path in pinned:
        with open(path) as fh:
            data = json.load(fh)
        assert data["schema"] == CORPUS_SCHEMA
        assert set(data["expect"]) >= {
            "digest", "statuses", "shed_ids", "quarantined_ids"
        }
        notes.append(data["note"])
    joined = " ".join(notes)
    for regime in ("shed", "quarantine", "demotion", "breaker"):
        assert regime in joined, f"no pinned entry covers {regime!r}"


@pytest.mark.parametrize(
    "path", serve_corpus_paths(),
    ids=[os.path.basename(p) for p in serve_corpus_paths()],
)
def test_replay_pinned_serve_entry(path):
    report = replay_serve_entry(path, verbose=False)
    assert report.ok, f"{os.path.basename(path)}: {report.failure}"

"""Circuit breaker: closed → open → half-open → closed/reopen."""

from __future__ import annotations

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import CorruptionDetectedError
from repro.resilience.executor import ResiliencePolicy
from repro.serve.requests import Request, ServePolicy
from repro.serve.shard import Shard

MONOID = sum_monoid(INTEGER)


def make_shard(**policy_kw):
    policy_kw.setdefault(
        "resilience", ResiliencePolicy(ladder=("flat",), max_retries=0)
    )
    policy_kw.setdefault("breaker_threshold", 2)
    policy_kw.setdefault("breaker_reset_s", 1.0)
    return Shard(
        0, MONOID, [1, 2, 3], seed=0, policy=ServePolicy(**policy_kw)
    )


def req(req_id, *, deadline=None):
    return Request(
        req_id=req_id, shard=0, kind="insert", args=(0, req_id),
        deadline=deadline,
    )


def _break_structure(shard):
    """Make every tree batch fail recoverably; with a single-rung
    ladder and no retries, each window then fails outright."""
    def boom(*a, **k):
        raise CorruptionDetectedError("induced batch failure")
    shard.session._structure.batch_insert = boom
    return boom


def _fix_structure(shard):
    del shard.session._structure.batch_insert  # back to the class method


def test_breaker_opens_after_consecutive_failures_and_recovers():
    shard = make_shard()
    _break_structure(shard)
    # Two consecutive failed windows reach the threshold.
    assert shard.execute_window([req(0)], 0.0)[0].status == "failed"
    assert shard.breaker_state == "closed"
    assert shard.execute_window([req(1)], 0.0)[1].status == "failed"
    assert shard.breaker_state == "open"
    assert shard.stats["breaker_opens"] == 1
    # While open: instant refusal, nothing queued.
    refusal = shard.offer(req(2), now=0.5)
    assert refusal.status == "circuit-open"
    assert shard.pending == 0
    # After the open interval the next offer half-opens and queues.
    assert shard.offer(req(3), now=1.1) is None
    assert shard.breaker_state == "half-open"
    # The probe window succeeds (structure repaired) -> breaker closes.
    _fix_structure(shard)
    out = shard.execute_window(shard.take_window(), 1.2)
    assert out[3].status == "applied"
    assert shard.breaker_state == "closed"
    assert shard.stats["breaker_closes"] == 1


def test_failed_probe_reopens_with_doubled_interval():
    shard = make_shard(breaker_backoff_factor=2.0)
    _break_structure(shard)
    shard.execute_window([req(0)], 0.0)
    shard.execute_window([req(1)], 0.0)
    assert shard.breaker_state == "open"
    first_until = shard.breaker_open_until
    assert first_until == 1.0  # reset_s * factor^0
    # Half-open probe fails -> reopen immediately (no threshold wait)
    # with the interval doubled.
    assert shard.offer(req(2), now=1.5) is None
    assert shard.breaker_state == "half-open"
    out = shard.execute_window(shard.take_window(), 1.5)
    assert out[2].status == "failed"
    assert shard.breaker_state == "open"
    assert shard.stats["breaker_opens"] == 2
    assert shard.breaker_open_until == 1.5 + 2.0  # reset_s * factor^1


def test_success_resets_consecutive_failure_count():
    shard = make_shard()
    _break_structure(shard)
    shard.execute_window([req(0)], 0.0)
    assert shard.breaker_failures == 1
    _fix_structure(shard)
    shard.execute_window([req(1)], 0.0)
    assert shard.breaker_failures == 0
    _break_structure(shard)
    shard.execute_window([req(2)], 0.0)
    assert shard.breaker_state == "closed"  # 1 < threshold again


def test_worker_death_demotion_is_confined_to_one_shard():
    """A dying backend on one shard demotes that shard's session down
    the ladder; sibling shards keep their rung and their traffic."""
    from repro.perf.parallel.pool import DeadWorkerError

    policy = ServePolicy(
        resilience=ResiliencePolicy(
            ladder=("flat", "reference"), max_retries=0
        )
    )
    sick = Shard(0, MONOID, [1, 2, 3], seed=0, policy=policy)
    healthy = Shard(1, MONOID, [4, 5, 6], seed=0, policy=policy)

    def die(*a, **k):
        raise DeadWorkerError("worker died mid-batch")

    sick.session._structure.batch_insert = die
    out = sick.execute_window([req(0)], 0.0)
    # The ladder absorbed the death: demoted to reference, op applied.
    assert out[0].status == "applied"
    assert sick.session.rung == "reference"
    assert len(sick.session.events) == 1
    assert "worker died" in sick.session.events[0].reason
    assert sick.values() == [0, 1, 2, 3]
    # The sibling shard is untouched.
    h_out = healthy.execute_window(
        [Request(req_id=9, shard=1, kind="insert", args=(0, 9))], 0.0
    )
    assert h_out[9].status == "applied"
    assert healthy.session.rung == "flat"
    assert healthy.session.events == []
    # And the sick shard keeps serving on its new rung.
    assert sick.execute_window([req(1)], 0.0)[1].status == "applied"
    assert sick.breaker_state == "closed"  # demotion is not a failure

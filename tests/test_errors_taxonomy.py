"""Taxonomy sweep (PR 3): historical bare-builtin raise sites are
re-parented onto dual-inheritance ReproError subclasses.

Every swept site must satisfy *both* catch contracts: ``except
ReproError`` (the library taxonomy) and the legacy builtin (callers
that predate the sweep).
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.errors import (
    BatchHandleError,
    BatchPositionError,
    BatchStructureError,
    BatchValidationError,
    ConvergenceError,
    EmptyTreeError,
    InvalidParameterError,
    LabelError,
    ParseTreeError,
    PositionError,
    ReproError,
    RequestRejection,
    batch_validation_error,
)


# ---------------------------------------------------------------------------
# class-level contracts
# ---------------------------------------------------------------------------


def test_dual_inheritance_classes():
    assert issubclass(InvalidParameterError, ReproError)
    assert issubclass(InvalidParameterError, ValueError)
    assert issubclass(EmptyTreeError, InvalidParameterError)
    assert issubclass(PositionError, ReproError)
    assert issubclass(PositionError, IndexError)
    assert issubclass(ConvergenceError, ReproError)
    assert issubclass(ConvergenceError, RuntimeError)
    assert issubclass(ParseTreeError, ReproError)
    assert issubclass(ParseTreeError, ValueError)
    assert issubclass(LabelError, ReproError)
    assert issubclass(LabelError, ValueError)


def test_batch_error_compat_classes():
    assert issubclass(BatchValidationError, errors.RequestError)
    assert issubclass(BatchStructureError, errors.TreeStructureError)
    assert issubclass(BatchHandleError, errors.UnknownNodeError)
    assert issubclass(BatchPositionError, IndexError)


def test_batch_validation_error_factory_mapping():
    def mk(*reasons):
        return batch_validation_error(
            [RequestRejection(i, r) for i, r in enumerate(reasons)],
            len(reasons),
        )

    assert isinstance(mk("duplicate-handle"), BatchStructureError)
    assert isinstance(mk("not-a-leaf", "delete-all-leaves"), BatchStructureError)
    assert isinstance(mk("unknown-handle"), BatchHandleError)
    assert isinstance(
        mk("unknown-node", "target-removed-by-batch"), BatchHandleError
    )
    assert isinstance(mk("position-out-of-range"), BatchPositionError)
    # Mixed reason classes fall back to the plain base.
    mixed = mk("duplicate-handle", "unknown-handle")
    assert type(mixed) is BatchValidationError
    assert mixed.batch_size == 2
    assert len(mixed.rejections) == 2


# ---------------------------------------------------------------------------
# swept raise sites, both catch contracts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["reference", "flat"])
def test_empty_tree_both_catches(backend):
    from repro.splitting.rbsts import RBSTS

    for catch in (ReproError, ValueError, EmptyTreeError):
        with pytest.raises(catch):
            RBSTS([], backend=backend)


def test_unknown_backend_both_catches():
    from repro.splitting.rbsts import RBSTS

    for catch in (ReproError, ValueError, InvalidParameterError):
        with pytest.raises(catch):
            RBSTS([1, 2], backend="gpu")


@pytest.mark.parametrize("backend", ["reference", "flat"])
def test_position_error_both_catches(backend):
    from repro.splitting.rbsts import RBSTS

    tree = RBSTS([1, 2, 3], backend=backend)
    for catch in (ReproError, IndexError, PositionError):
        with pytest.raises(catch):
            tree.leaf_at(17)
        with pytest.raises(catch):
            tree.insert(99, 0)


def test_build_zero_leaves_both_catches():
    import random

    from repro.splitting.build import build_subtree
    from repro.splitting.node import BSTNode

    for catch in (ReproError, ValueError, EmptyTreeError):
        with pytest.raises(catch):
            build_subtree(
                [],
                random.Random(0),
                base_depth=0,
                ancestor_path=[],
                shortcut_height_threshold=4,
                new_node=BSTNode,
            )


def test_tree_builders_both_catches():
    from repro.algebra.rings import INTEGER
    from repro.trees.builders import random_tree

    for catch in (ReproError, ValueError, EmptyTreeError):
        with pytest.raises(catch):
            random_tree(INTEGER, 0)


def test_modular_ring_both_catches():
    from repro.algebra.rings import modular_ring

    for catch in (ReproError, ValueError, InvalidParameterError):
        with pytest.raises(catch):
            modular_ring(1)


def test_unknown_op_kind_both_catches():
    from repro.algebra.rings import INTEGER
    from repro.contraction.labels import rake_label
    from repro.trees.nodes import Op

    bogus = Op(kind="xor")
    for catch in (ReproError, ValueError, LabelError):
        with pytest.raises(catch):
            bogus.apply(INTEGER, 1, 2)
        with pytest.raises(catch):
            rake_label(INTEGER, bogus, (0, 1), (1, 0))


def test_parse_tree_root_not_activated_both_catches():
    from repro.splitting.parse_tree import build_extended_parse_tree
    from repro.splitting.rbsts import RBSTS

    tree = RBSTS([1, 2, 3, 4])
    leaf = tree.leaf_at(0)
    for catch in (ReproError, ValueError, ParseTreeError):
        with pytest.raises(catch):
            # Empty member set: the root was never activated.
            build_extended_parse_tree(tree.root, set(), [leaf])


# ---------------------------------------------------------------------------
# this PR's sweep: graphs / linkcut / applications / pram
# ---------------------------------------------------------------------------


def test_new_dual_inheritance_classes():
    assert issubclass(errors.GraphStructureError, ReproError)
    assert issubclass(errors.GraphStructureError, ValueError)
    assert issubclass(errors.LinkCutError, errors.TreeStructureError)
    assert issubclass(errors.LinkCutError, ValueError)
    assert issubclass(errors.DuplicateKeyError, ReproError)
    assert issubclass(errors.DuplicateKeyError, KeyError)
    assert issubclass(errors.UnknownKeyError, errors.UnknownNodeError)
    assert issubclass(errors.UnknownKeyError, KeyError)
    assert issubclass(
        errors.NotAnInternalNodeError, errors.TreeStructureError
    )
    assert issubclass(errors.NotAnInternalNodeError, ValueError)
    assert issubclass(errors.StepDisciplineError, errors.PRAMError)


def test_graph_builders_both_catches():
    from repro.graphs.builders import random_sp_tree

    for catch in (ReproError, ValueError, errors.GraphStructureError):
        with pytest.raises(catch):
            random_sp_tree(0)


def test_graph_recognize_both_catches():
    from repro.graphs.recognize import recognize

    for catch in (ReproError, ValueError, errors.GraphStructureError):
        with pytest.raises(catch):
            recognize([], 0, 1)  # no edges
        with pytest.raises(catch):
            recognize([(0, 1, 1.0)], 0, 0)  # identical terminals
        with pytest.raises(catch):
            recognize([(0, 0, 1.0)], 0, 1)  # self-loop


def test_linkcut_both_catches():
    from repro.baselines.linkcut import LinkCutForest

    forest = LinkCutForest()
    forest.make_node(1)
    forest.make_node(2)
    for catch in (ReproError, KeyError, errors.DuplicateKeyError):
        with pytest.raises(catch):
            forest.make_node(1)
    for catch in (ReproError, KeyError, errors.UnknownKeyError):
        with pytest.raises(catch):
            forest.find_root(99)
    forest.link(1, 2)
    for catch in (ReproError, ValueError, errors.LinkCutError):
        with pytest.raises(catch):
            forest.link(1, 2)  # 1 is no longer a root
        with pytest.raises(catch):
            forest.cut(2)  # 2 is already a root


def test_batch_prune_leaf_both_catches():
    from repro.applications.properties import DynamicTreeProperties

    props = DynamicTreeProperties(seed=0)
    root = props.tree.root.nid  # the initial root is a leaf
    for catch in (ReproError, ValueError, errors.NotAnInternalNodeError):
        with pytest.raises(catch):
            props.batch_prune([root])


def test_parallel_sum_empty_both_catches():
    from repro.pram.programs import parallel_sum

    for catch in (ReproError, ValueError, InvalidParameterError):
        with pytest.raises(catch):
            parallel_sum([])

"""The snapshot-restore differential rig and its integration seams:
lockstep capture -> mutate -> restore -> replay on every backend, the
persist-mode codec audit, the fuzzer exercises, and the resilience
executor's one-snapshot-per-call contract."""

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import InvalidParameterError, RetryExhaustedError
from repro.resilience.executor import ResiliencePolicy, ResilientListSession
from repro.resilience.faults import FaultPlan
from repro.snapshots.fuzz import fuzz_one, run_exercise
from repro.testing.executor import SNAPSHOT_MODES, run_sequence
from repro.testing.generator import generate

MONOID = sum_monoid(INTEGER)


# ---------------------------------------------------------------------------
# the differential rig
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ("both", "reference", "flat", "parallel"))
@pytest.mark.parametrize("mode", SNAPSHOT_MODES)
def test_rig_passes_on_every_backend(backend, mode):
    seq = generate("list", 11, 20)
    report = run_sequence(
        seq, backend=backend, snapshot_seed=11, snapshot_mode=mode
    )
    assert report.ok, report.failure
    assert report.snapshots > 0, "rig sampled no operations"


def test_rig_counts_audits_not_ops():
    seq = generate("list", 7, 30)
    plain = run_sequence(seq, backend="flat")
    audited = run_sequence(seq, backend="flat", snapshot_seed=7)
    assert plain.snapshots == 0
    assert 0 < audited.snapshots
    assert audited.ok and plain.ok


def test_snapshot_and_crash_seeds_mutually_exclusive():
    seq = generate("list", 1, 5)
    with pytest.raises(InvalidParameterError):
        run_sequence(seq, crash_seed=1, snapshot_seed=1)


def test_unknown_snapshot_mode_rejected():
    seq = generate("list", 1, 5)
    with pytest.raises(InvalidParameterError):
        run_sequence(seq, snapshot_seed=1, snapshot_mode="bogus")


# ---------------------------------------------------------------------------
# the fuzzer exercises, one deterministic spot check each
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,seed,backend",
    [
        ("differential", 0, "flat"),
        ("save-crash", 0, "flat"),
        ("restore-crash", 0, "parallel"),
        ("corruption", 1, "reference"),
    ],
)
def test_fuzz_exercises_spot_checks(name, seed, backend):
    outcome = run_exercise(name, seed, backend=backend)
    assert "overshoot" not in outcome, f"pinned crash no longer fires: {outcome}"


def test_fuzz_one_clean():
    for seed in range(4):  # one full schedule rotation
        outcome, failure = fuzz_one(seed)
        assert failure is None, failure


def test_run_exercise_rejects_unknown():
    with pytest.raises(InvalidParameterError):
        run_exercise("nonsense", 0)
    with pytest.raises(InvalidParameterError):
        run_exercise("differential", 0, backend="gpu")


# ---------------------------------------------------------------------------
# satellite 1 — one snapshot per supervised call, reused across retries
# ---------------------------------------------------------------------------


def drive(session):
    session.batch_insert([(0, 100), (5, 200)])
    session.insert(2, -7)
    session.batch_delete([3, 0])
    session.delete(1)


def test_one_checkpoint_per_call_despite_retries():
    faulted = ResilientListSession(
        MONOID,
        range(24),
        seed=0,
        plan=FaultPlan(2, rate=1.0, sticky_rate=0.0),
    )
    clean = ResilientListSession(MONOID, range(24), seed=0, plan=None)
    drive(faulted)
    drive(clean)
    assert faulted.stats["retries"] >= 1
    # The old implementation re-journaled per attempt: checkpoints grew
    # with retries.  Now a retried call still takes exactly one.
    assert faulted.stats["checkpoints"] == clean.stats["checkpoints"]
    assert faulted.stats["checkpoints"] == 4  # one per supervised call
    assert faulted.stats["rollbacks"] >= faulted.stats["retries"]
    assert faulted.values() == clean.values()
    assert faulted.rng_state() == clean.rng_state()


def test_exhausted_retries_leave_pre_call_state():
    session = ResilientListSession(
        MONOID,
        range(16),
        seed=0,
        policy=ResiliencePolicy(max_retries=1, ladder=("flat",)),
        plan=FaultPlan(1, rate=1.0, sticky_rate=1.0),
    )
    before = session.values()
    with pytest.raises(RetryExhaustedError):
        session.batch_insert([(0, 1), (2, 3)])
    assert session.values() == before
    assert session.stats["checkpoints"] == 1

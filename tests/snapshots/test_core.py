"""The unified MVCC snapshot layer: capture/restore bit-for-bit on all
three backends, transaction nesting, re-arming, and MVCC reads."""

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import SnapshotStateError
from repro.listprefix.structure import IncrementalListPrefix
from repro.snapshots.core import (
    FLAT_COLUMNS,
    SnapshotState,
    capture,
    restore,
    txn_commit,
    txn_rollback,
)
from repro.snapshots.fuzz import states_equal
from repro.testing.oracles import shape_signature

MONOID = sum_monoid(INTEGER)
BACKENDS = ("reference", "flat", "parallel")


def make(backend, *, n=12, seed=3):
    return IncrementalListPrefix(MONOID, range(n), seed=seed, backend=backend)


def observe(lp):
    return (
        shape_signature(lp.tree),
        lp.values(),
        lp.rng_state(),
        dict(lp.tree.last_batch_stats),
    )


def churn(lp, seed=0):
    import random

    rng = random.Random(("churn", seed).__repr__())
    n = len(lp.values())
    lp.batch_insert([(rng.randrange(n + 1), rng.randrange(50)) for _ in range(3)])
    lp.delete(lp.handle_at(rng.randrange(len(lp.values()))))
    lp.batch_set([(lp.handle_at(0), 99)])


# ---------------------------------------------------------------------------
# deep capture / restore
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_capture_restore_bit_for_bit(backend):
    lp = make(backend)
    before = observe(lp)
    state = capture(lp.tree)
    churn(lp)
    assert observe(lp) != before
    restore(lp.tree, state)
    assert observe(lp) == before
    lp.check_invariants()


@pytest.mark.parametrize("backend", BACKENDS)
def test_live_restore_preserves_handle_identity(backend):
    lp = make(backend)
    handles = [lp.handle_at(i) for i in range(len(lp.values()))]
    state = capture(lp.tree)
    churn(lp)
    state.restore(lp.tree)
    assert [lp.handle_at(i) for i in range(len(handles))] == handles
    # The surviving handles stay usable.
    lp.delete(handles[2])
    lp.check_invariants()


@pytest.mark.parametrize("backend", ("reference", "flat"))
def test_restore_into_sibling_tree(backend):
    a = make(backend, seed=5)
    b = make(backend, n=3, seed=9)
    state = capture(a.tree)
    state.restore(b.tree)
    assert observe(b) == observe(a)
    b.check_invariants()
    # Not the source tree: handles are fresh, but consistent.
    b.insert(0, -1)
    b.check_invariants()


def test_restore_backend_mismatch_raises():
    ref = make("reference")
    flat = make("flat")
    state = capture(ref.tree)
    with pytest.raises(SnapshotStateError):
        state.restore(flat.tree)
    with pytest.raises(SnapshotStateError):
        capture(flat.tree).restore(ref.tree)


def test_restore_rejected_while_txn_open():
    lp = make("flat")
    state = capture(lp.tree)
    journal = lp.tree._txn_begin()
    try:
        with pytest.raises(SnapshotStateError):
            state.restore(lp.tree)
    finally:
        lp.tree._txn_rollback(journal)


@pytest.mark.parametrize("backend", BACKENDS)
def test_capture_epoch_monotone(backend):
    lp = make(backend)
    s1 = capture(lp.tree)
    s2 = capture(lp.tree)
    assert s2.epoch > s1.epoch
    s1.restore(lp.tree)
    s3 = capture(lp.tree)
    assert s3.epoch > s2.epoch


def test_reference_state_columns_match_flat_schema():
    state = capture(make("reference").tree)
    assert set(state.columns) == set(FLAT_COLUMNS) | {"_nid"}
    assert state.next_id is not None


# ---------------------------------------------------------------------------
# observing snapshots: transactions, nesting, re-arming
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_txn_rollback_and_commit(backend):
    lp = make(backend)
    before = observe(lp)
    snap = lp.tree._txn_begin()
    churn(lp)
    lp.tree._txn_rollback(snap)
    assert observe(lp) == before
    lp.check_invariants()

    snap = lp.tree._txn_begin()
    churn(lp)
    after = observe(lp)
    lp.tree._txn_commit(snap)
    assert observe(lp) == after


@pytest.mark.parametrize("backend", BACKENDS)
def test_txn_restore_is_rearmable(backend):
    """One snapshot rewinds across several attempts — the bounded-retry
    contract."""
    lp = make(backend)
    before = observe(lp)
    snap = lp.tree._txn_begin()
    for attempt in range(3):
        churn(lp, seed=attempt)
        snap.restore(lp.tree)
        assert observe(lp) == before, f"attempt {attempt}"
    lp.tree._txn_commit(snap)
    assert observe(lp) == before
    lp.check_invariants()


@pytest.mark.parametrize("backend", BACKENDS)
def test_nested_txns_commit_inner_rollback_outer(backend):
    lp = make(backend)
    before = observe(lp)
    outer = lp.tree._txn_begin()
    churn(lp, seed=1)
    inner = lp.tree._txn_begin()
    churn(lp, seed=2)
    lp.tree._txn_commit(inner)
    # The outer snapshot observed through the inner one and rewinds
    # past its committed mutations.
    lp.tree._txn_rollback(outer)
    assert observe(lp) == before
    lp.check_invariants()


@pytest.mark.parametrize("backend", BACKENDS)
def test_nested_txns_rollback_inner_only(backend):
    lp = make(backend)
    outer = lp.tree._txn_begin()
    churn(lp, seed=1)
    mid = observe(lp)
    inner = lp.tree._txn_begin()
    churn(lp, seed=2)
    lp.tree._txn_rollback(inner)
    assert observe(lp) == mid
    lp.tree._txn_commit(outer)
    assert observe(lp) == mid
    lp.check_invariants()


def test_out_of_order_close_raises():
    lp = make("flat")
    outer = lp.tree._txn_begin()
    inner = lp.tree._txn_begin()
    with pytest.raises(SnapshotStateError):
        txn_commit(lp.tree, outer)
    txn_rollback(lp.tree, inner)
    txn_commit(lp.tree, outer)


def test_fanout_seam_installed_only_when_nested():
    lp = make("flat")
    assert lp.tree._journal is None
    outer = lp.tree._txn_begin()
    # One open snapshot: the seam is the snapshot itself.
    assert lp.tree._journal is outer
    inner = lp.tree._txn_begin()
    assert type(lp.tree._journal).__name__ == "_Fanout"
    lp.tree._txn_commit(inner)
    assert lp.tree._journal is outer
    lp.tree._txn_commit(outer)
    assert lp.tree._journal is None


# ---------------------------------------------------------------------------
# MVCC read path: materialize the capture-epoch version mid-mutation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ("flat", "parallel"))
def test_materialize_capture_epoch_version(backend):
    lp = make(backend)
    # Fill the lazy handle cache first: handle proxies are created
    # outside the journal seam, so an unfilled cache at capture time
    # would differ from the materialized view by cache fills alone.
    lp.handles()
    at_capture = capture(lp.tree)
    snap = lp.tree._txn_begin()
    churn(lp)
    # A reader materializes the snapshot's version while the writer's
    # mutations stay live.
    version = snap.materialize(lp.tree)
    assert states_equal(version, at_capture)
    after = observe(lp)
    lp.tree._txn_commit(snap)
    assert observe(lp) == after
    # The materialized image restores a scratch tree to the old state.
    scratch = make(backend, n=2, seed=0)
    version.restore(scratch.tree)
    scratch.check_invariants()
    assert states_equal(SnapshotState.capture(scratch.tree), at_capture)

"""Pinned-epoch reader API (PR 10 satellite).

``tree.pinned_reader()`` pins the capture epoch (O(1) on the flat
family via the transaction stack + ``FlatSnapshot.materialize()``;
deep capture on the reference backend) and answers values/folds from
that epoch while the live tree keeps mutating.  The differential test
interleaves a writer with an open reader and demands the reader stays
bit-stable on the pinned image while the writer's transactional
semantics (including crash rollback) are untouched by the pin.
"""

from __future__ import annotations

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.contraction.dynamic import DynamicTreeContraction
from repro.errors import BatchPositionError, InvalidParameterError
from repro.listprefix.structure import IncrementalListPrefix
from repro.snapshots import PinnedReader, pinned_reader
from repro.trees.expr import ExprTree

BACKENDS = ("reference", "flat")
MONOID = sum_monoid(INTEGER)


def _prefix_oracle(values, i):
    acc = MONOID.identity
    for v in values[: i + 1]:
        acc = MONOID.combine(acc, v)
    return acc


@pytest.mark.parametrize("backend", BACKENDS)
def test_reader_pins_epoch_while_writer_mutates(backend):
    lp = IncrementalListPrefix(
        MONOID, list(range(1, 9)), seed=11, backend=backend
    )
    pinned = lp.values()
    with lp.tree.pinned_reader(monoid=MONOID) as reader:
        assert reader.values() == pinned
        assert len(reader) == len(pinned)
        # Writer churns through several batches while the pin is open.
        lp.batch_insert([(0, 100), (4, 200)])
        lp.batch_delete([lp.handle_at(1)])
        lp.batch_set([(lp.handle_at(0), 999)])
        assert lp.values() != pinned
        # Reader still answers from the pinned epoch, bit-for-bit.
        assert reader.values() == pinned
        for i in range(len(pinned)):
            assert reader.value_at(i) == pinned[i]
            assert reader.prefix(i) == _prefix_oracle(pinned, i)
        assert reader.range_fold(2, 5) == sum(pinned[2:6])
        assert reader.total() == sum(pinned)
    # After close the live tree is what the writer made it.
    assert lp.values()[0] == 999


@pytest.mark.parametrize("backend", BACKENDS)
def test_writer_rollback_is_untouched_by_open_pin(backend):
    """A strict-rejected batch under an open pin must still roll back
    to the pre-batch state: the pinned reader is an observer, never the
    rollback owner (``Snapshot.pinned`` contract)."""
    lp = IncrementalListPrefix(
        MONOID, [5, 6, 7, 8], seed=3, backend=backend
    )
    with lp.tree.pinned_reader(monoid=MONOID) as reader:
        before = lp.values()
        rng_before = lp.rng_state()
        with pytest.raises(BatchPositionError):
            lp.batch_insert([(0, 50), (999, 51)])
        assert lp.values() == before
        assert lp.rng_state() == rng_before
        lp.check_invariants()
        assert reader.values() == [5, 6, 7, 8]


@pytest.mark.parametrize("backend", BACKENDS)
def test_nested_pins_and_epoch(backend):
    lp = IncrementalListPrefix(MONOID, [1, 2, 3], seed=0, backend=backend)
    with lp.tree.pinned_reader(monoid=MONOID) as outer:
        lp.insert(0, 10)
        with lp.tree.pinned_reader(monoid=MONOID) as inner:
            lp.insert(0, 20)
            assert outer.values() == [1, 2, 3]
            assert inner.values() == [10, 1, 2, 3]
        assert lp.values() == [20, 10, 1, 2, 3]


@pytest.mark.parametrize("backend", BACKENDS)
def test_reader_error_contract(backend):
    lp = IncrementalListPrefix(MONOID, [1, 2, 3], seed=0, backend=backend)
    reader = PinnedReader(lp.tree, monoid=MONOID)
    assert reader.values() == [1, 2, 3]
    reader.close()
    reader.close()  # idempotent
    # Materialized before close: queries keep working after.
    assert reader.total() == 6
    # Unmaterialized-at-close readers refuse queries on the flat
    # family (lazy materialize needs the pin open); the reference
    # backend captures eagerly so its image survives regardless.
    fresh = PinnedReader(lp.tree, monoid=MONOID)
    fresh.close()
    if backend == "flat":
        with pytest.raises(InvalidParameterError):
            fresh.values()
    else:
        assert fresh.values() == [1, 2, 3]
    # No monoid -> folds refuse, values still work.
    with pinned_reader(lp.tree) as plain:
        assert plain.values() == [1, 2, 3]
        with pytest.raises(InvalidParameterError):
            plain.total()


@pytest.mark.parametrize("backend", BACKENDS)
def test_contraction_exposes_pinned_reader(backend):
    from repro.trees.nodes import add_op

    tree = ExprTree(INTEGER)
    left, _right = tree.grow_leaf(tree.root.nid, add_op(), 3, 4)
    dtc = DynamicTreeContraction(tree, backend=backend)
    with dtc.pinned_reader() as reader:
        pinned_ids = reader.values()
        dtc.batch_grow([(left, add_op(), 7, 8)])
        # The pin is immune to the PT churn batch_grow causes.
        assert reader.values() == pinned_ids
        assert dtc.pt.n_leaves == len(pinned_ids) + 1

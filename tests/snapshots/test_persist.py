"""Versioned, checksummed snapshot persistence: round-trips, the
torn-file corruption matrix with its taxonomy errors, newest-intact
recovery, at-rest scrubbing, and save/restore crash atomicity."""

import hashlib
import json
import os

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import (
    ReproError,
    SnapshotChecksumError,
    SnapshotError,
    SnapshotFormatError,
)
from repro.listprefix.structure import IncrementalListPrefix
from repro.snapshots.core import SCHEMA, capture
from repro.snapshots.fuzz import states_equal
from repro.snapshots.persist import (
    MAGIC,
    load,
    load_newest,
    save,
    scrub_snapshot,
)
from repro.testing.crashes import CrashController, CrashInjected, snapshot_crash_points
from repro.testing.oracles import shape_signature

MONOID = sum_monoid(INTEGER)
BACKENDS = ("reference", "flat", "parallel")


def make(backend, *, n=10, seed=4):
    lp = IncrementalListPrefix(MONOID, range(n), seed=seed, backend=backend)
    lp.batch_insert([(0, 50), (n // 2, 60)])
    lp.delete(lp.handle_at(1))
    return lp


def _header_span(raw):
    """(start, end) byte offsets of the header JSON inside ``raw``."""
    hlen = int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 4], "big")
    start = len(MAGIC) + 4
    return start, start + hlen


def _parse_header(raw):
    start, end = _header_span(raw)
    return json.loads(raw[start:end].decode("utf-8")), end + 32


# ---------------------------------------------------------------------------
# round trip
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_save_load_round_trip(backend, tmp_path):
    lp = make(backend)
    state = capture(lp.tree)
    path = save(state, tmp_path / "a.snap")
    loaded = load(path)
    assert states_equal(loaded, state)
    assert loaded.handles is None and loaded.source_id is None
    assert loaded.epoch == state.epoch
    # A loaded state restores a scratch tree bit-for-bit.
    scratch = IncrementalListPrefix(MONOID, [0, 0], seed=0, backend=backend)
    loaded.restore(scratch.tree)
    assert shape_signature(scratch.tree) == shape_signature(lp.tree)
    assert scratch.rng_state() == lp.rng_state()
    assert scratch.tree.last_batch_stats == lp.tree.last_batch_stats
    scratch.check_invariants()
    scratch.insert(0, 7)  # restored tree is live
    scratch.check_invariants()


def test_save_is_atomic_replace(tmp_path):
    lp = make("flat")
    old = capture(lp.tree)
    path = save(old, tmp_path / "a.snap")
    lp.insert(0, 123)
    save(capture(lp.tree), path)
    assert not list(tmp_path.glob("*.tmp")), "tmp file must not survive"
    assert not states_equal(load(path), old)


# ---------------------------------------------------------------------------
# satellite 3 — the torn-file corruption matrix
# ---------------------------------------------------------------------------


def _corrupt_truncate(raw):
    return raw[: len(raw) // 2]


def _corrupt_truncate_tail(raw):
    return raw[:-3]


def _corrupt_magic(raw):
    return b"NOTSNAP0" + raw[len(MAGIC) :]


def _corrupt_header_bits(raw):
    """Flip a bit inside the header JSON region."""
    start, _ = _header_span(raw)
    i = start + 5
    return raw[:i] + bytes([raw[i] ^ 0x08]) + raw[i + 1 :]


def _corrupt_column_bits(raw):
    """Flip a bit inside the first column's payload region."""
    _, payload_start = _parse_header(raw)
    i = payload_start + 3
    return raw[:i] + bytes([raw[i] ^ 0x10]) + raw[i + 1 :]


def _corrupt_swap_digests(raw):
    """Swap two column digests in the directory and recompute the
    header digest — the header verifies, two columns do not."""
    header, payload_start = _parse_header(raw)
    cols = header["columns"]
    cols[0]["sha256"], cols[1]["sha256"] = cols[1]["sha256"], cols[0]["sha256"]
    hdr = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join(
        [
            MAGIC,
            len(hdr).to_bytes(4, "big"),
            hdr,
            hashlib.sha256(hdr).digest(),
            raw[payload_start:],
        ]
    )


def _corrupt_trailing(raw):
    return raw + b"xx"


def _corrupt_schema(raw):
    header, payload_start = _parse_header(raw)
    header["schema"] = "repro-snapshot/999"
    hdr = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join(
        [
            MAGIC,
            len(hdr).to_bytes(4, "big"),
            hdr,
            hashlib.sha256(hdr).digest(),
            raw[payload_start:],
        ]
    )


CORRUPTIONS = [
    ("truncate-half", _corrupt_truncate, SnapshotFormatError, None),
    ("truncate-tail", _corrupt_truncate_tail, SnapshotFormatError, None),
    ("bad-magic", _corrupt_magic, SnapshotFormatError, None),
    ("header-bit-flip", _corrupt_header_bits, SnapshotChecksumError, "header"),
    ("column-bit-flip", _corrupt_column_bits, SnapshotChecksumError, "_parent"),
    ("digest-swap", _corrupt_swap_digests, SnapshotChecksumError, "_parent"),
    ("trailing-garbage", _corrupt_trailing, SnapshotFormatError, None),
    ("unknown-schema", _corrupt_schema, SnapshotFormatError, None),
]


@pytest.mark.parametrize("backend", ("reference", "flat"))
@pytest.mark.parametrize(
    "name,mangle,exc_type,column", CORRUPTIONS, ids=[c[0] for c in CORRUPTIONS]
)
def test_corruption_matrix(backend, name, mangle, exc_type, column, tmp_path):
    path = save(capture(make(backend).tree), tmp_path / "a.snap")
    raw = path.read_bytes()
    damaged = mangle(raw)
    assert damaged != raw, f"{name}: corruption was a no-op"
    path.write_bytes(damaged)
    with pytest.raises(exc_type) as exc_info:
        load(path)
    if column is not None:
        assert exc_info.value.column == column
    # Taxonomy: both errors are SnapshotError under ReproError.
    assert isinstance(exc_info.value, SnapshotError)
    assert isinstance(exc_info.value, ReproError)
    # Scrub sees the same damage without raising.
    report = scrub_snapshot(path)
    assert not report.ok and exc_type.__name__ in report.problem


def test_every_payload_byte_is_covered(tmp_path):
    """Flipping ANY single byte after the magic/hlen prefix must be
    detected — load never returns a silently-wrong structure."""
    path = save(capture(make("flat", n=4).tree), tmp_path / "a.snap")
    raw = path.read_bytes()
    stride = max(1, len(raw) // 40)  # sample ~40 positions
    for i in range(len(MAGIC), len(raw), stride):
        path.write_bytes(raw[:i] + bytes([raw[i] ^ 0x01]) + raw[i + 1 :])
        with pytest.raises((SnapshotFormatError, SnapshotChecksumError)):
            load(path)


# ---------------------------------------------------------------------------
# newest-intact recovery
# ---------------------------------------------------------------------------


def test_load_newest_skips_damaged(tmp_path):
    lp = make("flat")
    old = capture(lp.tree)
    old_path = save(old, tmp_path / "old.snap")
    lp.insert(0, 9)
    new_path = save(capture(lp.tree), tmp_path / "new.snap")
    os.utime(old_path, (1_000_000, 1_000_000))
    os.utime(new_path, (2_000_000, 2_000_000))
    new_path.write_bytes(_corrupt_column_bits(new_path.read_bytes()))

    result = load_newest(tmp_path)
    assert result.path == old_path
    assert states_equal(result.state, old)
    assert len(result.damage) == 1
    assert result.damage[0].path == new_path
    assert "SnapshotChecksumError" in result.damage[0].problem


def test_load_newest_all_damaged_raises_newest_error(tmp_path):
    lp = make("flat")
    a = save(capture(lp.tree), tmp_path / "a.snap")
    b = save(capture(lp.tree), tmp_path / "b.snap")
    os.utime(a, (1_000_000, 1_000_000))
    os.utime(b, (2_000_000, 2_000_000))
    a.write_bytes(_corrupt_truncate(a.read_bytes()))
    b.write_bytes(_corrupt_header_bits(b.read_bytes()))
    with pytest.raises(SnapshotChecksumError):  # newest candidate's error
        load_newest(tmp_path)


def test_load_newest_empty_directory(tmp_path):
    with pytest.raises(SnapshotFormatError):
        load_newest(tmp_path)


# ---------------------------------------------------------------------------
# crash atomicity through the SnapshotIO stage hooks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("stage,expect_old", [(1, True), (2, True), (3, False)])
def test_save_crash_atomicity(stage, expect_old, tmp_path):
    lp = make("flat")
    old = capture(lp.tree)
    path = save(old, tmp_path / "a.snap")
    lp.insert(0, 42)
    new = capture(lp.tree)

    ctl = CrashController()
    with snapshot_crash_points(ctl):
        ctl.arm(stage)
        with pytest.raises(CrashInjected):
            save(new, path)
    assert ctl.fired
    on_disk = load(path)
    want = old if expect_old else new
    assert states_equal(on_disk, want), f"stage {stage}: torn on-disk state"
    # A retried save always lands the new state.
    save(new, path)
    assert states_equal(load(path), new)


@pytest.mark.parametrize("backend", BACKENDS)
def test_restore_crash_then_rerestore(backend, tmp_path):
    lp = make(backend)
    want_sig = shape_signature(lp.tree)
    want_rng = lp.rng_state()
    path = save(capture(lp.tree), tmp_path / "a.snap")
    lp.batch_insert([(0, 1), (1, 2)])
    loaded = load(path)

    ctl = CrashController()
    with snapshot_crash_points(ctl):
        ctl.arm(3)  # mid-restore, between columns
        with pytest.raises(CrashInjected):
            loaded.restore(lp.tree)
        assert ctl.fired, "restore has >= 3 stages on every backend"
        # The target is torn; a re-restore must still land cleanly.
        loaded.restore(lp.tree)
    assert shape_signature(lp.tree) == want_sig
    assert lp.rng_state() == want_rng
    lp.check_invariants()
    lp.insert(0, 5)
    lp.check_invariants()

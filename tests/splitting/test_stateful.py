"""Hypothesis stateful testing: the RBSTS against a plain-list model
through arbitrary interleavings of every public operation."""

import itertools

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.splitting.activation import activate, ancestors_closure, deactivate
from repro.splitting.build import Summarizer
from repro.splitting.rbsts import RBSTS


class RBSTSMachine(RuleBasedStateMachine):
    @initialize(
        items=st.lists(st.integers(-50, 50), min_size=1, max_size=20),
        seed=st.integers(0, 1000),
    )
    def setup(self, items, seed):
        self.model = list(items)
        self.tree = RBSTS(
            items,
            seed=seed,
            summarizer=Summarizer(sum_monoid(INTEGER), lambda x: x),
        )
        self.ops = 0

    @rule(data=st.data(), value=st.integers(-50, 50))
    def insert_single(self, data, value):
        pos = data.draw(st.integers(0, len(self.model)))
        self.tree.insert(pos, value)
        self.model.insert(pos, value)
        self.ops += 1

    @rule(data=st.data())
    @precondition(lambda self: len(self.model) > 1)
    def delete_single(self, data):
        pos = data.draw(st.integers(0, len(self.model) - 1))
        item = self.tree.delete(self.tree.leaf_at(pos))
        assert item == self.model.pop(pos)
        self.ops += 1

    @rule(data=st.data())
    def batch_insert(self, data):
        k = data.draw(st.integers(1, 4))
        reqs = [
            (data.draw(st.integers(0, len(self.model))), data.draw(st.integers(-50, 50)))
            for _ in range(k)
        ]
        self.tree.batch_insert(reqs)
        by_pos = {}
        for pos, v in reqs:
            by_pos.setdefault(pos, []).append(v)
        out = []
        for pos in range(len(self.model) + 1):
            out.extend(by_pos.get(pos, []))
            if pos < len(self.model):
                out.append(self.model[pos])
        self.model = out
        self.ops += 1

    @rule(data=st.data())
    @precondition(lambda self: len(self.model) > 3)
    def batch_delete(self, data):
        k = data.draw(st.integers(1, min(3, len(self.model) - 1)))
        idxs = data.draw(
            st.lists(
                st.integers(0, len(self.model) - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        self.tree.batch_delete([self.tree.leaf_at(i) for i in idxs])
        self.model = [x for i, x in enumerate(self.model) if i not in set(idxs)]
        self.ops += 1

    @rule(data=st.data(), value=st.integers(-50, 50))
    def update_value(self, data, value):
        pos = data.draw(st.integers(0, len(self.model) - 1))
        self.tree.update_leaf_item(self.tree.leaf_at(pos), value)
        self.model[pos] = value

    @rule(data=st.data())
    def activate_some(self, data):
        k = data.draw(st.integers(1, min(4, len(self.model))))
        idxs = data.draw(
            st.lists(
                st.integers(0, len(self.model) - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        leaves = [self.tree.leaf_at(i) for i in idxs]
        res = activate(self.tree, leaves)
        assert res.node_set() == ancestors_closure(leaves)
        deactivate(res)

    @invariant()
    def sequence_matches_model(self):
        if not hasattr(self, "model"):
            return
        assert [l.item for l in self.tree.leaves()] == self.model
        assert self.tree.root.summary == sum(self.model)

    @invariant()
    def structure_is_valid(self):
        if not hasattr(self, "model"):
            return
        self.tree.check_invariants()


TestRBSTSStateful = RBSTSMachine.TestCase
TestRBSTSStateful.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)

"""Lemma 2.1 — random splitting-tree construction."""

import random

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.pram.frames import SpanTracker
from repro.splitting.build import Summarizer, build_subtree
from repro.splitting.node import BSTNode
from repro.splitting.shortcuts import presence_threshold


def make_leaves(n):
    leaves = []
    for i in range(n):
        leaf = BSTNode(i)
        leaf.item = i
        leaves.append(leaf)
    return leaves


def build(n, seed=0, threshold=None, summarizer=None, tracker=None):
    leaves = make_leaves(n)
    ids = [len(leaves)]

    def new_node():
        node = BSTNode(ids[0])
        ids[0] += 1
        return node

    return build_subtree(
        leaves,
        random.Random(seed),
        base_depth=0,
        ancestor_path=(),
        shortcut_height_threshold=(
            threshold if threshold is not None else presence_threshold(n)
        ),
        new_node=new_node,
        summarizer=summarizer,
        tracker=tracker,
    ), leaves


def test_zero_leaves_rejected():
    with pytest.raises(ValueError):
        build(0)


def test_single_leaf_returns_it():
    root, leaves = build(1)
    assert root is leaves[0]
    assert root.depth == 0 and root.height == 0


def test_structure_fields_consistent():
    root, leaves = build(200, seed=1)
    stack = [(root, 0)]
    count = 0
    while stack:
        node, depth = stack.pop()
        count += 1
        assert node.depth == depth
        if node.is_leaf:
            assert node.n_leaves == 1 and node.height == 0
        else:
            assert node.n_leaves == node.left.n_leaves + node.right.n_leaves
            assert node.height == 1 + max(node.left.height, node.right.height)
            assert node.left.parent is node and node.right.parent is node
            stack.extend([(node.left, depth + 1), (node.right, depth + 1)])
    assert count == 2 * 200 - 1


def test_leaf_order_preserved():
    root, leaves = build(50, seed=2)
    out = []
    stack = [root]
    while stack:
        n = stack.pop()
        if n.is_leaf:
            out.append(n)
        else:
            stack.extend([n.right, n.left])
    assert out == leaves


def test_summaries_computed():
    summarizer = Summarizer(sum_monoid(INTEGER), lambda x: x)
    root, _ = build(64, seed=3, summarizer=summarizer)
    assert root.summary == sum(range(64))


def test_shortcuts_only_above_threshold():
    root, _ = build(256, seed=4, threshold=3)
    stack = [root]
    while stack:
        n = stack.pop()
        if n.shortcuts is not None:
            assert n.height > 3 and n.depth > 0
        if not n.is_leaf:
            stack.extend([n.left, n.right])


def test_tracker_charged_linear_work_log_span():
    import math

    tracker = SpanTracker()
    root, _ = build(1024, seed=5, tracker=tracker)
    assert tracker.work >= 2 * 1024 - 1
    assert tracker.span <= root.height + math.ceil(math.log2(1024)) + 1


def test_leaf_metadata_reset_on_rebuild():
    """Reused leaves must have stale fields cleared."""
    leaves = make_leaves(8)
    leaves[0].height = 99
    leaves[0].shortcuts = []
    leaves[0].n_leaves = 42
    ids = [8]

    def new_node():
        node = BSTNode(ids[0])
        ids[0] += 1
        return node

    build_subtree(
        leaves,
        random.Random(0),
        base_depth=0,
        ancestor_path=(),
        shortcut_height_threshold=2,
        new_node=new_node,
    )
    assert leaves[0].height == 0
    assert leaves[0].shortcuts is None
    assert leaves[0].n_leaves == 1

"""Extended parse tree extraction (§3's P̂T(U))."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.splitting.activation import activate, ancestors_closure, deactivate
from repro.splitting.build import Summarizer
from repro.splitting.parse_tree import build_extended_parse_tree
from repro.splitting.rbsts import RBSTS


def summed(n, seed=0):
    return RBSTS(
        range(n), seed=seed, summarizer=Summarizer(sum_monoid(INTEGER), lambda x: x)
    )


@given(n=st.integers(2, 200), seed=st.integers(0, 20), k=st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_entries_partition_the_leaf_sequence(n, seed, k):
    t = summed(n, seed)
    rng = random.Random(seed)
    k = min(k, n)
    leaves = [t.leaf_at(i) for i in rng.sample(range(n), k)]
    members = ancestors_closure(leaves)
    pat = build_extended_parse_tree(t.root, members, leaves)
    # Summed widths cover the whole sequence in order.
    covered = 0
    for e in pat.entries:
        covered += e.node.n_leaves
    assert covered == n
    # Entry summaries concatenate to the total.
    assert sum(pat.summary_values()) == sum(range(n))


def test_u_leaves_appear_as_real_leaf_entries_in_order():
    t = summed(50, seed=3)
    idxs = [4, 20, 33]
    leaves = [t.leaf_at(i) for i in idxs]
    pat = build_extended_parse_tree(t.root, ancestors_closure(leaves), leaves)
    real = [(e.node.item) for e in pat.entries if e.kind == "leaf"]
    assert real == idxs


def test_pat_at_most_twice_pt():
    """The paper: |P̂T(U)| = O(|PT(U)|)."""
    t = summed(1 << 10, seed=4)
    rng = random.Random(4)
    leaves = [t.leaf_at(i) for i in rng.sample(range(1 << 10), 8)]
    members = ancestors_closure(leaves)
    pat = build_extended_parse_tree(t.root, members, leaves)
    assert pat.pt_size == len(members)
    assert len(pat.entries) <= pat.pt_size + 1


def test_root_must_be_in_members():
    t = summed(10)
    with pytest.raises(ValueError):
        build_extended_parse_tree(t.root, set(), [t.leaf_at(0)])


def test_matches_activation_members():
    t = summed(300, seed=5)
    leaves = [t.leaf_at(i) for i in (0, 150, 299)]
    result = activate(t, leaves)
    pat = build_extended_parse_tree(t.root, result.node_set(), leaves)
    assert sum(pat.summary_values()) == sum(range(300))
    deactivate(result)

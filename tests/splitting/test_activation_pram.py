"""Instruction-level PRAM activation cross-validated against both the
direct implementation and the closure oracle."""

import random

from repro.splitting.activation import activate, ancestors_closure, deactivate
from repro.splitting.activation_pram import activate_on_machine
from repro.splitting.rbsts import RBSTS


def closure_ids(leaves):
    out = set()
    for leaf in leaves:
        node = leaf
        while node is not None:
            out.add(node.nid)
            node = node.parent
    return out


def test_machine_activation_matches_closure():
    rng = random.Random(0)
    t = RBSTS(range(1024), seed=1)
    for trial in range(10):
        k = rng.randint(1, 20)
        leaves = [t.leaf_at(i) for i in rng.sample(range(t.n_leaves), k)]
        res = activate_on_machine(t, leaves)
        assert res.activated_ids == closure_ids(leaves), trial


def test_machine_and_direct_agree_and_costs_comparable():
    rng = random.Random(1)
    t = RBSTS(range(1 << 12), seed=2)
    leaves = [t.leaf_at(i) for i in rng.sample(range(t.n_leaves), 8)]
    machine_res = activate_on_machine(t, leaves)
    direct_res = activate(t, leaves)
    assert machine_res.activated_ids == {v.nid for v in direct_res.activated}
    # The machine executes a handful of instructions per logical round,
    # so its step count should be within a small constant of the direct
    # round count — not proportional to tree depth.
    assert machine_res.metrics.steps <= 12 * (direct_res.rounds_total + 4)
    deactivate(direct_res)


def test_machine_steps_scale_doubly_logarithmically():
    steps = []
    for exp in (8, 16):
        n = 1 << exp
        t = RBSTS(range(n), seed=exp)
        leaves = [t.leaf_at(i) for i in random.Random(exp).sample(range(n), 4)]
        res = activate_on_machine(t, leaves)
        steps.append(res.metrics.steps)
    # 256x more leaves should cost only a few extra machine steps.
    assert steps[1] <= steps[0] + 40


def test_machine_work_tracks_processor_bound():
    n = 1 << 12
    t = RBSTS(range(n), seed=3)
    leaves = [t.leaf_at(i) for i in random.Random(3).sample(range(n), 16)]
    res = activate_on_machine(t, leaves)
    # Work = steps x avg processors; must stay well under |U| * depth
    # * instruction constant.
    assert res.metrics.work <= 16 * t.depth() * 12


def test_machine_activation_after_updates():
    rng = random.Random(4)
    t = RBSTS(range(256), seed=4)
    for k in range(300):
        t.insert(rng.randint(0, t.n_leaves), k)
        if t.n_leaves > 64:
            t.delete(t.leaf_at(rng.randint(0, t.n_leaves - 1)))
    leaves = [t.leaf_at(i) for i in rng.sample(range(t.n_leaves), 6)]
    res = activate_on_machine(t, leaves)
    assert res.activated_ids == closure_ids(leaves)

"""RBSTS structure: construction, navigation, single updates, invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import TreeStructureError, UnknownNodeError
from repro.splitting.build import Summarizer
from repro.splitting.rbsts import RBSTS


def summed(items, seed=0):
    return RBSTS(
        items, seed=seed, summarizer=Summarizer(sum_monoid(INTEGER), lambda x: x)
    )


def test_requires_at_least_one_item():
    with pytest.raises(ValueError):
        RBSTS([])


def test_construction_preserves_order_and_counts():
    t = summed(range(500), seed=1)
    t.check_invariants()
    assert t.n_leaves == 500
    assert [l.item for l in t.leaves()] == list(range(500))
    assert t.root.summary == sum(range(500))


def test_single_item_tree():
    t = RBSTS([42])
    assert t.n_leaves == 1
    assert t.root.is_leaf
    assert t.leaf_at(0).item == 42
    t.check_invariants()


@given(n=st.integers(1, 300), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_leaf_at_and_index_of_are_inverse(n, seed):
    t = RBSTS(range(n), seed=seed)
    for i in (0, n // 3, n - 1):
        leaf = t.leaf_at(i)
        assert t.index_of(leaf) == i
        assert leaf.item == i


def test_leaf_at_bounds():
    t = RBSTS(range(10))
    with pytest.raises(IndexError):
        t.leaf_at(10)
    with pytest.raises(IndexError):
        t.leaf_at(-1)


def test_index_of_foreign_leaf_rejected():
    t1, t2 = RBSTS(range(5)), RBSTS(range(5))
    with pytest.raises(UnknownNodeError):
        t1.index_of(t2.leaf_at(0))
    assert not t1.contains(t2.leaf_at(0))


def test_insert_at_every_gap():
    base = list(range(8))
    for pos in range(9):
        t = summed(base, seed=pos)
        t.insert(pos, 99)
        expect = base[:pos] + [99] + base[pos:]
        assert [l.item for l in t.leaves()] == expect
        t.check_invariants()
        assert t.root.summary == sum(expect)


def test_insert_position_bounds():
    t = RBSTS(range(5))
    with pytest.raises(IndexError):
        t.insert(6, 0)


def test_delete_each_position():
    base = list(range(8))
    for pos in range(8):
        t = summed(base, seed=pos + 100)
        item = t.delete(t.leaf_at(pos))
        assert item == pos
        expect = base[:pos] + base[pos + 1 :]
        assert [l.item for l in t.leaves()] == expect
        t.check_invariants()


def test_delete_last_leaf_rejected():
    t = RBSTS([1])
    with pytest.raises(TreeStructureError):
        t.delete(t.leaf_at(0))


def test_delete_internal_rejected():
    t = RBSTS(range(4))
    with pytest.raises(TreeStructureError):
        t.delete(t.root)


def test_leaf_handles_survive_rebuilds():
    t = RBSTS(range(100), seed=3)
    handles = {i: t.leaf_at(i) for i in range(100)}
    rng = random.Random(0)
    for k in range(60):
        t.insert(rng.randint(0, t.n_leaves), 1000 + k)
    for i, h in handles.items():
        assert h.item == i
        assert t.contains(h)
    t.check_invariants()


def test_expected_depth_logarithmic_after_churn():
    t = RBSTS(range(512), seed=9)
    rng = random.Random(1)
    for k in range(800):
        if rng.random() < 0.5 and t.n_leaves > 64:
            t.delete(t.leaf_at(rng.randint(0, t.n_leaves - 1)))
        else:
            t.insert(rng.randint(0, t.n_leaves), k)
    t.check_invariants()
    import math

    assert t.depth() <= 6 * math.log2(t.n_leaves)


def test_update_leaf_item_refreshes_summaries():
    t = summed(range(50), seed=4)
    leaf = t.leaf_at(20)
    t.update_leaf_item(leaf, 1000)
    assert t.root.summary == sum(range(50)) - 20 + 1000
    t.check_invariants()


def test_seed_determinism():
    shape_a = [n.is_leaf for n in _preorder(RBSTS(range(64), seed=5))]
    shape_b = [n.is_leaf for n in _preorder(RBSTS(range(64), seed=5))]
    shape_c = [n.is_leaf for n in _preorder(RBSTS(range(64), seed=6))]
    assert shape_a == shape_b
    assert shape_a != shape_c


def _preorder(t):
    out, stack = [], [t.root]
    while stack:
        n = stack.pop()
        out.append(n)
        if not n.is_leaf:
            stack.extend([n.right, n.left])
    return out

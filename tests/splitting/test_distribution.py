"""Distribution preservation (Theorems 2.2/2.3).

The insertion/deletion rules were derived to keep the RBST distribution
exactly stationary (DESIGN.md §2).  These tests compare the *root split*
distribution and depth statistics of (a) freshly built trees against
(b) trees reaching the same size through updates.  Statistical: they use
wide tolerances and fixed seeds so they are deterministic.
"""

import random
from collections import Counter

from repro.splitting.rbsts import RBSTS


def root_split(tree):
    return tree.root.left.n_leaves


def test_insert_preserves_root_split_uniformity():
    """Grow 4 -> 12 by random-position inserts; the root split of the
    result should be ~uniform on 1..11 like a fresh RBST's."""
    trials = 1500
    grown = Counter()
    for seed in range(trials):
        rng = random.Random(seed)
        t = RBSTS(range(4), seed=seed)
        for k in range(8):
            t.insert(rng.randint(0, t.n_leaves), 100 + k)
        grown[root_split(t)] += 1
    expected = trials / 11
    for s in range(1, 12):
        assert 0.5 * expected <= grown[s] <= 1.6 * expected, (s, grown[s])


def test_delete_preserves_root_split_uniformity():
    """Shrink 12 -> 8 by random deletes; root split ~uniform on 1..7."""
    trials = 1500
    shrunk = Counter()
    for seed in range(trials):
        rng = random.Random(seed + 10_000)
        t = RBSTS(range(12), seed=seed)
        for _ in range(4):
            t.delete(t.leaf_at(rng.randint(0, t.n_leaves - 1)))
        shrunk[root_split(t)] += 1
    expected = trials / 7
    for s in range(1, 8):
        assert 0.5 * expected <= shrunk[s] <= 1.6 * expected, (s, shrunk[s])


def test_depth_distribution_matches_fresh_builds():
    """Mean depth after heavy mixed churn ≈ mean depth of fresh trees of
    the same size (within 20%)."""
    n_target = 128
    fresh = []
    for seed in range(60):
        fresh.append(RBSTS(range(n_target), seed=seed).depth())
    churned = []
    for seed in range(60):
        rng = random.Random(seed + 999)
        t = RBSTS(range(n_target), seed=seed)
        for k in range(300):
            t.insert(rng.randint(0, t.n_leaves), k)
            t.delete(t.leaf_at(rng.randint(0, t.n_leaves - 1)))
        assert t.n_leaves == n_target
        churned.append(t.depth())
    mean_fresh = sum(fresh) / len(fresh)
    mean_churned = sum(churned) / len(churned)
    assert abs(mean_churned - mean_fresh) <= 0.2 * mean_fresh, (
        mean_fresh,
        mean_churned,
    )


def test_batch_insert_depth_stays_logarithmic():
    import math

    for seed in range(5):
        rng = random.Random(seed)
        t = RBSTS(range(64), seed=seed)
        for round_ in range(20):
            reqs = [(rng.randint(0, t.n_leaves), round_ * 100 + i) for i in range(32)]
            t.batch_insert(reqs)
        assert t.n_leaves == 64 + 20 * 32
        assert t.depth() <= 6 * math.log2(t.n_leaves), t.depth()


def test_fresh_build_root_split_uniform_sanity():
    """Sanity-check the generator itself: fresh builds have uniform
    splits by construction."""
    trials = 1200
    counts = Counter(root_split(RBSTS(range(8), seed=s)) for s in range(trials))
    expected = trials / 7
    for s in range(1, 8):
        assert 0.55 * expected <= counts[s] <= 1.55 * expected

"""Batch insert/delete/update (Theorems 2.2/2.3): semantics + costs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import RequestError, TreeStructureError
from repro.pram.frames import SpanTracker
from repro.splitting.build import Summarizer
from repro.splitting.rbsts import RBSTS


def summed(items, seed=0):
    return RBSTS(
        items, seed=seed, summarizer=Summarizer(sum_monoid(INTEGER), lambda x: x)
    )


def batch_insert_oracle(items, requests):
    by_pos = {}
    for pos, it in requests:
        by_pos.setdefault(pos, []).append(it)
    out = []
    for pos in range(len(items) + 1):
        out.extend(by_pos.get(pos, []))
        if pos < len(items):
            out.append(items[pos])
    return out


@given(
    n=st.integers(2, 120),
    seed=st.integers(0, 30),
    k=st.integers(1, 25),
)
@settings(max_examples=40, deadline=None)
def test_batch_insert_semantics(n, seed, k):
    rng = random.Random(seed * 1000 + n)
    items = list(range(n))
    t = summed(items, seed=seed)
    requests = [(rng.randint(0, n), 1000 + i) for i in range(k)]
    handles = t.batch_insert(requests)
    expect = batch_insert_oracle(items, requests)
    assert [l.item for l in t.leaves()] == expect
    assert [h.item for h in handles] == [it for _, it in requests]
    t.check_invariants()
    assert t.root.summary == sum(expect)


def test_batch_insert_equal_positions_keep_request_order():
    t = RBSTS(list("abc"), seed=0)
    t.batch_insert([(1, "x"), (1, "y"), (1, "z")])
    assert [l.item for l in t.leaves()] == ["a", "x", "y", "z", "b", "c"]


def test_batch_insert_empty_is_noop():
    t = RBSTS(range(5))
    assert t.batch_insert([]) == []


def test_batch_insert_rejects_bad_position():
    t = RBSTS(range(5))
    with pytest.raises(RequestError):
        t.batch_insert([(9, 0)])


@given(
    n=st.integers(4, 120),
    seed=st.integers(0, 30),
    k=st.integers(1, 20),
)
@settings(max_examples=40, deadline=None)
def test_batch_delete_semantics(n, seed, k):
    rng = random.Random(seed * 917 + n)
    k = min(k, n - 1)
    t = summed(range(n), seed=seed)
    victims = [t.leaf_at(i) for i in rng.sample(range(n), k)]
    keep = [l.item for l in t.leaves() if l not in victims]
    t.batch_delete(victims)
    assert [l.item for l in t.leaves()] == keep
    t.check_invariants()
    assert t.root.summary == sum(keep)


def test_batch_delete_rejects_duplicates_and_all_leaves():
    t = RBSTS(range(4))
    leaf = t.leaf_at(0)
    with pytest.raises(RequestError):
        t.batch_delete([leaf, leaf])
    with pytest.raises(TreeStructureError):
        t.batch_delete(t.leaves())


def test_batch_delete_contiguous_block():
    # Deleting a whole subtree's leaves exercises site widening.
    t = RBSTS(range(64), seed=7)
    victims = [t.leaf_at(i) for i in range(10, 40)]
    t.batch_delete(victims)
    assert [l.item for l in t.leaves()] == list(range(10)) + list(range(40, 64))
    t.check_invariants()


def test_batch_update_items_semantics_and_summaries():
    t = summed(range(30), seed=2)
    updates = [(t.leaf_at(i), 100 + i) for i in (3, 7, 20)]
    t.batch_update_items(updates)
    expect = [100 + i if i in (3, 7, 20) else i for i in range(30)]
    assert [l.item for l in t.leaves()] == expect
    assert t.root.summary == sum(expect)
    t.check_invariants()


def test_batch_rebuild_mass_is_reported_and_bounded():
    rng = random.Random(3)
    t = RBSTS(range(4096), seed=3)
    requests = [(rng.randint(0, t.n_leaves), i) for i in range(16)]
    t.batch_insert(requests)
    stats = t.last_batch_stats
    assert stats["sites"] >= 1
    assert stats["rebuild_mass"] >= stats["sites"]
    # Theorem 2.2: E[S] = O(|U| log n); allow generous slack for variance.
    import math

    assert stats["rebuild_mass"] <= 40 * 16 * math.log2(4096)


def test_batch_span_grows_sublinearly_in_u():
    """Parallel batch span must be far below the sequential |U|·log n."""
    import math

    t = RBSTS(range(4096), seed=11)
    rng = random.Random(5)
    tracker = SpanTracker()
    requests = [(rng.randint(0, t.n_leaves), i) for i in range(64)]
    t.batch_insert(requests, tracker)
    sequential = 64 * math.log2(4096)
    assert tracker.span < sequential / 2
    assert tracker.work >= tracker.span


def test_interleaved_batches_stay_consistent():
    rng = random.Random(8)
    t = summed(range(100), seed=8)
    model = list(range(100))
    for round_ in range(15):
        reqs = [(rng.randint(0, len(model)), 10_000 + round_ * 100 + i) for i in range(5)]
        t.batch_insert(reqs)
        model = batch_insert_oracle(model, reqs)
        idxs = rng.sample(range(len(model)), 4)
        victims = [t.leaf_at(i) for i in idxs]
        t.batch_delete(victims)
        model = [x for i, x in enumerate(model) if i not in set(idxs)]
        assert [l.item for l in t.leaves()] == model
        t.check_invariants()

"""Theorem 2.1 — the processor activation procedure."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RequestError
from repro.pram.frames import SpanTracker
from repro.splitting.activation import (
    activate,
    ancestors_closure,
    deactivate,
)
from repro.splitting.rbsts import RBSTS


@given(
    n=st.integers(2, 500),
    seed=st.integers(0, 40),
    k=st.integers(1, 30),
)
@settings(max_examples=60, deadline=None)
def test_activation_marks_exactly_the_parse_tree(n, seed, k):
    rng = random.Random(seed * 31 + n)
    t = RBSTS(range(n), seed=seed)
    k = min(k, n)
    leaves = [t.leaf_at(i) for i in rng.sample(range(n), k)]
    result = activate(t, leaves)
    assert result.node_set() == ancestors_closure(leaves)
    deactivate(result)
    t.check_invariants()  # flags and low cells reset


def test_single_leaf_tree():
    t = RBSTS([1])
    result = activate(t, [t.root])
    assert result.node_set() == {id(t.root)}
    deactivate(result)


def test_rejects_empty_and_internal_sets():
    t = RBSTS(range(8))
    with pytest.raises(RequestError):
        activate(t, [])
    with pytest.raises(RequestError):
        activate(t, [t.root])


def test_duplicate_leaves_tolerated():
    t = RBSTS(range(32), seed=1)
    leaf = t.leaf_at(5)
    result = activate(t, [leaf, leaf])
    assert result.node_set() == ancestors_closure([leaf])
    deactivate(result)


def test_rounds_scale_doubly_logarithmically():
    """The headline claim: rounds ≈ O(log(|U| log n)), so going from
    n = 2^8 to n = 2^16 should barely move the round count, while the
    tree depth (the naive cost) roughly doubles."""
    rounds, depths = [], []
    for exp in (8, 16):
        n = 1 << exp
        t = RBSTS(range(n), seed=exp)
        leaves = [t.leaf_at(i) for i in random.Random(exp).sample(range(n), 4)]
        result = activate(t, leaves)
        rounds.append(result.rounds_total)
        depths.append(t.depth())
        deactivate(result)
    assert depths[1] >= 1.5 * depths[0]  # naive cost grows
    assert rounds[1] <= rounds[0] + 8  # activation barely grows


def test_processor_bound():
    """Processors = O(|U| log n / θ) (Theorem 2.1)."""
    n = 1 << 14
    t = RBSTS(range(n), seed=3)
    for k in (1, 8, 64):
        leaves = [t.leaf_at(i) for i in random.Random(k).sample(range(n), k)]
        result = activate(t, leaves)
        bound = k * t.depth() / result.threshold
        assert result.processors <= 8 * bound + 8, (k, result.processors, bound)
        deactivate(result)


def test_tracker_charges_match_rounds():
    t = RBSTS(range(1000), seed=5)
    leaves = [t.leaf_at(i) for i in (1, 500, 900)]
    tracker = SpanTracker()
    result = activate(t, leaves, tracker)
    assert tracker.span == result.rounds_total
    assert tracker.work >= tracker.span
    deactivate(result)


def test_activation_is_repeatable_after_deactivate():
    t = RBSTS(range(200), seed=6)
    leaves = [t.leaf_at(i) for i in (0, 100, 199)]
    first = activate(t, leaves)
    set1 = first.node_set()
    deactivate(first)
    second = activate(t, leaves)
    assert second.node_set() == set1
    deactivate(second)


def test_no_fallback_walks_on_freshly_built_tree():
    t = RBSTS(range(1 << 12), seed=7)
    leaves = [t.leaf_at(i) for i in range(0, 1 << 12, 257)]
    result = activate(t, leaves)
    assert result.fallback_walk_steps == 0
    deactivate(result)


def test_activation_correct_after_heavy_churn():
    rng = random.Random(9)
    t = RBSTS(range(256), seed=9)
    for k in range(500):
        if rng.random() < 0.5 and t.n_leaves > 32:
            t.delete(t.leaf_at(rng.randint(0, t.n_leaves - 1)))
        else:
            t.insert(rng.randint(0, t.n_leaves), k)
    for trial in range(20):
        k = rng.randint(1, 12)
        leaves = [t.leaf_at(i) for i in rng.sample(range(t.n_leaves), k)]
        result = activate(t, leaves)
        assert result.node_set() == ancestors_closure(leaves)
        deactivate(result)


def test_parse_tree_size_bound():
    """|PT(U)| = O(|U| log n) on a (balanced) RBSTS."""
    n = 1 << 12
    t = RBSTS(range(n), seed=10)
    for k in (2, 16):
        leaves = [t.leaf_at(i) for i in random.Random(k).sample(range(n), k)]
        result = activate(t, leaves)
        assert len(result.activated) <= k * (t.depth() + 1)
        deactivate(result)

"""Adversarial activation scenarios: stripped shortcuts (defensive
fallback), mass deletion (stale presence thresholds), and per-phase
machine metrics."""

import random

from repro.pram.machine import Machine
from repro.pram.ops import Local
from repro.splitting.activation import activate, ancestors_closure, deactivate
from repro.splitting.rbsts import RBSTS


def test_fallback_mode_still_correct():
    """Strip every shortcut list: activation must degrade to walking
    (counted as fallback steps) but stay correct."""
    t = RBSTS(range(512), seed=1)
    stack = [t.root]
    while stack:
        node = stack.pop()
        node.shortcuts = None
        if not node.is_leaf:
            stack.extend([node.left, node.right])
    leaves = [t.leaf_at(i) for i in (3, 200, 480)]
    res = activate(t, leaves)
    assert res.node_set() == ancestors_closure(leaves)
    deactivate(res)


def test_partial_shortcut_stripping():
    """Strip shortcuts from a random half of the nodes — mixed
    fast/fallback processors must still cover everything."""
    rng = random.Random(2)
    t = RBSTS(range(1024), seed=2)
    stack = [t.root]
    while stack:
        node = stack.pop()
        if node.shortcuts is not None and rng.random() < 0.5:
            node.shortcuts = None
        if not node.is_leaf:
            stack.extend([node.left, node.right])
    for trial in range(10):
        leaves = [t.leaf_at(i) for i in rng.sample(range(1024), 6)]
        res = activate(t, leaves)
        assert res.node_set() == ancestors_closure(leaves)
        deactivate(res)


def test_activation_after_mass_deletion():
    """Shrink 4096 -> ~100 leaves: presence thresholds computed at the
    high-water mark go stale; activation must remain correct."""
    rng = random.Random(3)
    t = RBSTS(range(4096), seed=3)
    while t.n_leaves > 100:
        k = min(64, t.n_leaves - 100)
        victims = [t.leaf_at(i) for i in rng.sample(range(t.n_leaves), k)]
        t.batch_delete(victims)
    t.check_invariants()
    for trial in range(10):
        leaves = [t.leaf_at(i) for i in rng.sample(range(t.n_leaves), 5)]
        res = activate(t, leaves)
        assert res.node_set() == ancestors_closure(leaves)
        deactivate(res)


def test_activation_after_mass_growth():
    """Grow 16 -> 2048 leaves: old shallow nodes must get repaired
    shortcut lists on touched paths."""
    rng = random.Random(4)
    t = RBSTS(range(16), seed=4)
    while t.n_leaves < 2048:
        reqs = [(rng.randint(0, t.n_leaves), t.n_leaves + i) for i in range(64)]
        t.batch_insert(reqs)
    t.check_invariants()
    for trial in range(10):
        leaves = [t.leaf_at(i) for i in rng.sample(range(t.n_leaves), 4)]
        res = activate(t, leaves)
        assert res.node_set() == ancestors_closure(leaves)
        # the repaired structure should rarely need fallback walking
        assert res.fallback_walk_steps <= t.depth()
        deactivate(res)


def test_machine_phase_metrics():
    m = Machine()

    def prog():
        yield Local()
        yield Local()

    m.spawn(prog())
    m.set_phase("warmup")
    m.step()
    m.set_phase("work")
    m.run()
    assert m.metrics.phase_steps["warmup"] == 1
    assert m.metrics.phase_steps["work"] == 1

"""Transactional batch execution (PR 3 tentpole).

Covers, for *both* backends with identical observable behaviour:

* whole-batch admission control (no mutation, no RNG consumption, and
  ``last_batch_stats`` reset on rejection — the stale-stats regression);
* degenerate batches: empty, size-1, delete-to-minimum, duplicates;
* ``policy="partial"`` per-request outcome reports;
* crash-consistent rollback: a :class:`CrashInjected` raised at an
  interior point of the apply restores the pre-batch state bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.algebra.monoid import sum_monoid
from repro.algebra.rings import INTEGER
from repro.errors import (
    BatchHandleError,
    BatchPositionError,
    BatchStructureError,
    BatchValidationError,
    InvalidParameterError,
    TreeStructureError,
    UnknownNodeError,
)
from repro.listprefix.structure import IncrementalListPrefix
from repro.splitting.rbsts import RBSTS
from repro.testing.crashes import CrashController, CrashInjected, crash_points
from repro.testing.oracles import shape_signature
from repro.transactions import BatchReport

BACKENDS = ["reference", "flat"]


def make(n=12, *, seed=3, backend="reference"):
    return RBSTS(
        range(n),
        seed=seed,
        backend=backend,
        summarizer=None,
    )


def snapshot(tree):
    return (shape_signature(tree), tree.rng_state(), dict(tree.last_batch_stats))


def assert_unchanged(tree, snap, *, stats_reset=False):
    sig, rng, stats = snap
    assert shape_signature(tree) == sig, "structure mutated"
    assert tree.rng_state() == rng, "RNG consumed"
    if stats_reset:
        assert tree.last_batch_stats == {}, "stats not reset on rejection"
    else:
        assert dict(tree.last_batch_stats) == stats
    tree.check_invariants()


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_rejected_insert_batch_is_atomic(backend):
    tree = make(backend=backend)
    tree.batch_insert([(0, 100)])  # populate last_batch_stats
    snap = snapshot(tree)
    with pytest.raises(BatchPositionError) as ei:
        tree.batch_insert([(1, 7), (99, 8)])
    assert isinstance(ei.value, IndexError)
    assert [r.reason for r in ei.value.rejections] == ["position-out-of-range"]
    assert ei.value.rejections[0].index == 1
    assert_unchanged(tree, snap, stats_reset=True)


@pytest.mark.parametrize("backend", BACKENDS)
def test_rejected_delete_batch_is_atomic(backend):
    tree = make(backend=backend)
    snap = snapshot(tree)
    dup = tree.leaf_at(4)
    with pytest.raises(BatchStructureError) as ei:
        tree.batch_delete([dup, dup])
    assert isinstance(ei.value, TreeStructureError)
    assert [r.reason for r in ei.value.rejections] == ["duplicate-handle"]
    assert_unchanged(tree, snap, stats_reset=True)


@pytest.mark.parametrize("backend", BACKENDS)
def test_foreign_handle_rejected(backend):
    tree = make(backend=backend)
    other = make(backend=backend, seed=9)
    snap = snapshot(tree)
    with pytest.raises(BatchHandleError) as ei:
        tree.batch_delete([other.leaf_at(0)])
    assert isinstance(ei.value, UnknownNodeError)
    assert [r.reason for r in ei.value.rejections] == ["unknown-handle"]
    assert_unchanged(tree, snap, stats_reset=True)
    with pytest.raises(BatchHandleError):
        tree.batch_update_items([(other.leaf_at(1), 5)])
    assert_unchanged(tree, snap, stats_reset=True)


@pytest.mark.parametrize("backend", BACKENDS)
def test_delete_all_leaves_rejected_whole_batch(backend):
    tree = make(3, backend=backend)
    snap = snapshot(tree)
    handles = [tree.leaf_at(i) for i in range(3)]
    with pytest.raises(BatchStructureError) as ei:
        tree.batch_delete(handles)
    assert {r.reason for r in ei.value.rejections} == {"delete-all-leaves"}
    assert len(ei.value.rejections) == 3  # every request marked
    assert_unchanged(tree, snap, stats_reset=True)
    # policy="partial" applies *none* of them either.
    report = tree.batch_delete(handles, policy="partial")
    assert isinstance(report, BatchReport)
    assert report.applied == 0 and report.rejected == 3
    assert tree.n_leaves == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_unknown_policy_rejected(backend):
    tree = make(backend=backend)
    with pytest.raises(InvalidParameterError):
        tree.batch_insert([(0, 1)], policy="optimistic")


def test_rejection_behaviour_identical_across_backends():
    """Same batch, same rejection reasons/indices/order, zero RNG on
    both backends."""
    ref, flat = make(backend="reference"), make(backend="flat")
    bad = [(0, 1), (-2, 2), (999, 3)]
    outs = {}
    for name, tree in (("reference", ref), ("flat", flat)):
        rng0 = tree.rng_state()
        with pytest.raises(BatchPositionError) as ei:
            tree.batch_insert(bad)
        outs[name] = [(r.index, r.reason) for r in ei.value.rejections]
        assert tree.rng_state() == rng0
    assert outs["reference"] == outs["flat"] == [
        (1, "position-out-of-range"),
        (2, "position-out-of-range"),
    ]


# ---------------------------------------------------------------------------
# degenerate batches
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_batches_are_no_ops(backend):
    tree = make(backend=backend)
    snap = snapshot(tree)
    assert tree.batch_insert([]) == []
    assert tree.batch_delete([]) is None
    assert tree.batch_update_items([]) is None
    assert_unchanged(tree, snap)
    for report in (
        tree.batch_insert([], policy="partial"),
        tree.batch_delete([], policy="partial"),
        tree.batch_update_items([], policy="partial"),
    ):
        assert isinstance(report, BatchReport)
        assert report.applied == report.rejected == 0


def test_size_one_batches_identical_across_backends():
    ref, flat = make(backend="reference"), make(backend="flat")
    for tree in (ref, flat):
        (h,) = tree.batch_insert([(5, 77)])
        assert h.item == 77
        tree.batch_update_items([(h, 78)])
        tree.batch_delete([h])
    assert shape_signature(ref) == shape_signature(flat)
    assert ref.rng_state() == flat.rng_state()


@pytest.mark.parametrize("backend", BACKENDS)
def test_delete_to_minimum(backend):
    tree = make(5, backend=backend)
    tree.batch_delete([tree.leaf_at(i) for i in (0, 1, 2, 3)])
    assert tree.n_leaves == 1
    tree.check_invariants()


# ---------------------------------------------------------------------------
# policy="partial"
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_partial_insert_reports_and_applies_subset(backend):
    tree = make(4, backend=backend)
    before = [leaf.item for leaf in tree.leaves()]
    report = tree.batch_insert(
        [(0, "a"), (99, "b"), (4, "c")], policy="partial"
    )
    assert isinstance(report, BatchReport)
    assert report.applied == 2 and report.rejected == 1
    assert [o.accepted for o in report.outcomes] == [True, False, True]
    assert report.outcomes[1].reason == "position-out-of-range"
    # Accepted outcomes carry the new leaf handles.
    a, c = report.results
    assert a.item == "a" and c.item == "c"
    assert [leaf.item for leaf in tree.leaves()] == ["a"] + before + ["c"]
    tree.check_invariants()


@pytest.mark.parametrize("backend", BACKENDS)
def test_partial_all_rejected_resets_stats(backend):
    tree = make(backend=backend)
    tree.batch_insert([(0, 1)])
    assert tree.last_batch_stats  # populated by the successful batch
    report = tree.batch_insert([(999, 1)], policy="partial")
    assert report.applied == 0
    assert tree.last_batch_stats == {}


# ---------------------------------------------------------------------------
# stale last_batch_stats regression (satellite a)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_stale_stats_cleared_on_rejection(backend):
    """Historically a rejected batch left the *previous* batch's
    ``last_batch_stats`` in place, so a caller reading stats after
    catching the error saw a report that looked like its own batch."""
    tree = make(backend=backend)
    tree.batch_insert([(0, 1), (3, 2)])
    stale = dict(tree.last_batch_stats)
    assert stale
    with pytest.raises(BatchValidationError):
        tree.batch_insert([(12345, 9)])
    assert tree.last_batch_stats == {}
    assert tree.last_batch_stats != stale


# ---------------------------------------------------------------------------
# crash-consistent rollback
# ---------------------------------------------------------------------------


def _batch_ops(tree):
    n = tree.n_leaves
    return [
        ("bins", lambda: tree.batch_insert([(0, 50), (n // 2, 51), (n, 52)])),
        ("bdel", lambda: tree.batch_delete(
            [tree.leaf_at(i) for i in (0, n // 2)]
        )),
        ("bset", lambda: tree.batch_update_items(
            [(tree.leaf_at(i), 60 + i) for i in (0, 1, n - 1)]
        )),
    ]


@pytest.mark.parametrize("backend", BACKENDS)
def test_mid_batch_crash_rolls_back_bit_for_bit(backend):
    """Arm a crash at every feasible interior point of every batch kind
    and check the journal restores the exact pre-batch state."""
    ctl = CrashController()
    fired_total = 0
    with crash_points(ctl):
        for step in range(1, 16):
            tree = make(10, backend=backend)
            tree.batch_insert([(2, 99)])  # populate stats + churn shape
            for what, op in _batch_ops(tree):
                snap = snapshot(tree)
                ctl.arm(step)
                try:
                    op()
                except CrashInjected:
                    fired_total += 1
                    assert_unchanged(tree, snap)
                    # The structure stays fully usable: re-apply cleanly.
                    op()
                finally:
                    ctl.disarm()
                tree.check_invariants()
    assert fired_total > 0, "no crash point ever fired"


def test_crash_rollback_preserves_backend_equivalence():
    """After a crash + rollback + clean re-apply, reference and flat
    are still bit-identical twins (same shapes, same RNG residue)."""
    ctl = CrashController()
    trees = {b: make(8, backend=b) for b in BACKENDS}
    with crash_points(ctl):
        for b, tree in trees.items():
            ctl.arm(2)
            try:
                tree.batch_insert([(0, 7), (8, 8)])
            except CrashInjected:
                tree.batch_insert([(0, 7), (8, 8)])
            finally:
                ctl.disarm()
    ref, flat = trees["reference"], trees["flat"]
    assert shape_signature(ref) == shape_signature(flat)
    assert ref.rng_state() == flat.rng_state()
    assert ref.last_batch_stats == flat.last_batch_stats


# ---------------------------------------------------------------------------
# listprefix pass-through
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_listprefix_policy_passthrough(backend):
    lp = IncrementalListPrefix(
        sum_monoid(INTEGER), [1, 2, 3, 4], backend=backend
    )
    with pytest.raises(BatchPositionError):
        lp.batch_insert([(99, 5)])
    report = lp.batch_insert([(99, 5), (0, 6)], policy="partial")
    assert isinstance(report, BatchReport)
    assert report.applied == 1 and report.rejected == 1
    assert lp.values()[0] == 6
    assert lp.total() == 16
    lp.check_invariants()

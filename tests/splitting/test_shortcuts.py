"""Shortcut geometry: the ⌊d·(1−ρ^i)⌋ depth rule and repairs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.splitting.rbsts import RBSTS
from repro.splitting.shortcuts import (
    DEFAULT_RATIO,
    presence_threshold,
    repair_path,
    shortcut_target_depths,
)


def test_root_has_no_targets():
    assert tuple(shortcut_target_depths(0)) == ()


def test_depth_one_targets_only_root():
    assert tuple(shortcut_target_depths(1)) == (0,)


@given(depth=st.integers(1, 5000))
@settings(max_examples=100, deadline=None)
def test_targets_strictly_increasing_ending_at_parent(depth):
    targets = shortcut_target_depths(depth)
    assert targets[0] == 0  # s_{v,0} is the root
    assert targets[-1] == depth - 1  # ends at the parent
    assert all(a < b for a, b in zip(targets, targets[1:]))
    assert all(0 <= t < depth for t in targets)


@given(depth=st.integers(2, 5000))
@settings(max_examples=100, deadline=None)
def test_list_length_logarithmic(depth):
    import math

    targets = shortcut_target_depths(depth)
    # O(log_{3/2} d) entries plus the appended parent.
    bound = math.log(depth, 1 / DEFAULT_RATIO) + 3
    assert len(targets) <= bound


@given(depth=st.integers(3, 2000))
@settings(max_examples=60, deadline=None)
def test_remaining_range_shrinks_geometrically(depth):
    """d - t_i ratio: consecutive gaps shrink by ~ratio (the property
    the range-splitting argument needs)."""
    targets = shortcut_target_depths(depth)
    for a, b in zip(targets, targets[1:]):
        # the sub-range [a, b] is at most ~2/3 of [a, depth] plus
        # rounding slack of one unit
        assert (b - a) <= DEFAULT_RATIO * (depth - a) + 1


def test_presence_threshold_doubly_logarithmic():
    assert presence_threshold(16) >= 1
    t_small = presence_threshold(1 << 10)
    t_large = presence_threshold(1 << 20)
    assert t_small <= t_large <= t_small + 2  # loglog grows glacially


def test_repair_path_equips_tall_bare_nodes():
    tree = RBSTS(range(256), seed=1)
    # Strip shortcuts off the root path of some leaf, then repair.
    leaf = tree.leaf_at(100)
    stripped = []
    node = leaf.parent
    while node is not None:
        if node.shortcuts is not None:
            node.shortcuts = None
            stripped.append(node)
        node = node.parent
    created = repair_path(leaf, tree.n_leaves)
    threshold = presence_threshold(tree.n_leaves)
    assert created >= sum(1 for v in stripped if v.height > 2 * threshold)
    for v in stripped:
        if v.height > 2 * threshold:
            assert v.shortcuts is not None


def test_repair_path_refreshes_heights():
    tree = RBSTS(range(64), seed=2)
    leaf = tree.leaf_at(10)
    chain = []
    node = leaf.parent
    while node is not None:
        chain.append(node)
        node.height = 0  # corrupt
        node = node.parent
    repair_path(leaf, tree.n_leaves)
    for v in chain:
        assert v.height == 1 + max(v.left.height, v.right.height)

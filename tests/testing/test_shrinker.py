"""Unit tests for the delta-debugging shrinker on synthetic predicates."""

from __future__ import annotations

import pytest

from repro.testing.ops import OpSequence
from repro.testing.shrinker import shrink


def make_seq(ops, n0=16):
    return OpSequence(
        scenario="list", seed=0, n0=n0, ring="integer", ops=list(ops)
    )


def test_shrink_requires_failing_input():
    seq = make_seq([["ins", 0, 1]])
    with pytest.raises(ValueError):
        shrink(seq, lambda s: False)


def test_shrink_to_single_culprit_op():
    ops = [["ins", i, i] for i in range(40)]
    ops[23] = ["del", 99]  # the "bug trigger"

    def fails(seq):
        return any(op[0] == "del" for op in seq.ops)

    result = shrink(make_seq(ops), fails)
    assert len(result.sequence.ops) == 1
    assert result.sequence.ops[0][0] == "del"
    assert result.improved


def test_shrink_payload_thinning():
    # Failure requires *one* specific batch entry, not the whole payload.
    payload = [[i, i] for i in range(32)]
    seq = make_seq([["bins", payload]])

    def fails(s):
        return any(
            op[0] == "bins" and any(e[0] == 17 for e in op[1])
            for op in s.ops
        )

    result = shrink(seq, fails)
    (op,) = result.sequence.ops
    assert op[0] == "bins"
    assert len(op[1]) == 1
    assert op[1][0][0] == 17


def test_shrink_header_n0():
    seq = make_seq([["ins", 0, 1]], n0=48)

    def fails(s):
        return True  # always fails -> everything minimises

    result = shrink(seq, fails)
    assert result.sequence.n0 == 2


def test_shrink_preserves_two_op_interaction():
    # Failure needs both an "ins" and a "del" present, in that order.
    ops = [["ins", i, i] for i in range(10)]
    ops += [["del", 0]]
    ops += [["range", 0, 5] for _ in range(10)]

    def fails(s):
        kinds = [op[0] for op in s.ops]
        return "ins" in kinds and "del" in kinds

    result = shrink(make_seq(ops), fails)
    kinds = sorted(op[0] for op in result.sequence.ops)
    assert kinds == ["del", "ins"]


def test_shrink_respects_replay_budget():
    ops = [["ins", i, i] for i in range(64)]

    calls = []

    def fails(s):
        calls.append(1)
        return True

    shrink(make_seq(ops), fails, max_replays=10)
    assert len(calls) <= 11  # initial confirmation + budget

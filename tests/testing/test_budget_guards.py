"""The fuzz-driver budget guards (`--op-budget` / `--wall-timeout`):
a deliberately oversized program against a tiny budget must raise
`BudgetExceededError` — attributable, replayable, and never swallowed
by the executor's failure-capture nets."""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, ReproError
from repro.testing import generate, run_sequence
from repro.testing.fuzz import main

# Far more ops than any budget below: the program itself never
# finishes within budget (the "non-quiescing" subject).
BIG = generate("list", 0, 400)


def test_op_budget_raises_with_attribution():
    with pytest.raises(BudgetExceededError) as ei:
        run_sequence(BIG, backend="flat", op_budget=10)
    exc = ei.value
    assert exc.budget == "op-budget"
    assert exc.spent == 10
    assert f"seed {BIG.seed}" in str(exc), "the message must carry the replay seed"


def test_wall_timeout_raises_with_attribution():
    with pytest.raises(BudgetExceededError) as ei:
        run_sequence(BIG, backend="flat", wall_timeout=0.0)
    exc = ei.value
    assert exc.budget == "wall-timeout"
    assert exc.spent > 0.0
    assert f"seed {BIG.seed}" in str(exc)


def test_budget_error_taxonomy():
    # Dual inheritance: generic timeout handling AND `except ReproError`
    # both compose.
    assert issubclass(BudgetExceededError, TimeoutError)
    assert issubclass(BudgetExceededError, ReproError)


def test_budget_error_escapes_the_failure_capture_net():
    """run_sequence captures subject bugs as FailureInfo and keeps
    going; a budget exhaustion is a *harness* condition and must
    propagate instead of being recorded as a finding."""
    report = run_sequence(generate("list", 1, 30), backend="flat")
    assert report.ok  # baseline: the capture net exists
    with pytest.raises(BudgetExceededError):
        run_sequence(generate("list", 1, 30), backend="flat", op_budget=5)


def test_generous_budgets_are_invisible():
    seq = generate("list", 2, 40)
    bare = run_sequence(seq, backend="both")
    guarded = run_sequence(
        seq, backend="both", op_budget=10_000, wall_timeout=600.0
    )
    assert bare.ok and guarded.ok
    assert bare.ops_executed == guarded.ops_executed


def test_cli_exits_2_on_budget_exhaustion(capsys):
    rc = main(
        ["--seed", "0", "--ops", "400", "--backend", "flat",
         "--no-save", "--op-budget", "10"]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "budget" in err.lower()


def test_cli_unaffected_without_budget_flags():
    rc = main(["--seed", "0", "--ops", "60", "--backend", "flat", "--no-save"])
    assert rc == 0

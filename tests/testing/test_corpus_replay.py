"""Replay every pinned regression entry in ``tests/corpus/`` (satellite c).

Each corpus file is a shrunk op sequence in the
``repro-fuzz-corpus/1`` schema.  All entries must replay *clean* on the
backend recorded in their metadata (default: both, in lockstep) — a
failure here means a previously-fixed bug has regressed.
"""

from __future__ import annotations

import os

import pytest

from repro.testing import run_sequence
from repro.testing.corpus import corpus_paths, default_corpus_dir, load_entry

PATHS = corpus_paths(default_corpus_dir())


def test_corpus_is_seeded():
    assert PATHS, "tests/corpus/ must hold at least one pinned entry"


@pytest.mark.parametrize(
    "path", PATHS, ids=[os.path.basename(p) for p in PATHS]
)
def test_corpus_entry_replays_clean(path):
    seq = load_entry(path)
    backend = seq.meta.get("backend", "both")
    crash_seed = seq.meta.get("crash_seed")
    snapshot_seed = seq.meta.get("snapshot_seed")
    report = run_sequence(
        seq,
        backend=backend,
        check_every=1,
        crash_seed=crash_seed,
        snapshot_seed=snapshot_seed,
        snapshot_mode=seq.meta.get("snapshot_mode", "state"),
    )
    assert report.ok, f"{os.path.basename(path)}: {report.failure}"
    if crash_seed is not None:
        # Crash-rollback reproducers are only worth pinning if the
        # recorded crash schedule still fires mid-batch.
        assert report.crashes > 0, (
            f"{os.path.basename(path)}: crash schedule no longer fires"
        )
    if snapshot_seed is not None:
        # Snapshot reproducers must still drive the differential rig.
        assert report.snapshots > 0, (
            f"{os.path.basename(path)}: snapshot rig no longer samples"
        )
    exercise = seq.meta.get("snapshot_exercise")
    if exercise is not None:
        # Persistence reproducers re-run the recorded save/restore
        # crash or corruption exercise; run_exercise raises on any
        # contract violation.  The pinned entries record seeds whose
        # crash schedule actually fires (not an overshoot).
        from repro.snapshots.fuzz import run_exercise

        outcome = run_exercise(
            exercise,
            int(seq.meta.get("exercise_seed", seq.seed)),
            backend=seq.meta.get("exercise_backend", "flat"),
        )
        assert "overshoot" not in outcome, (
            f"{os.path.basename(path)}: exercise crash no longer fires "
            f"({outcome})"
        )


def test_corpus_schema_fields():
    for path in PATHS:
        seq = load_entry(path)
        assert seq.scenario in ("list", "contraction"), path
        assert seq.n0 >= 1, path
        assert isinstance(seq.ops, list), path

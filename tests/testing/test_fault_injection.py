"""Self-verification of the fuzzer: planted faults must be found & shrunk.

For each registered fault we assert the pipeline the ISSUE requires:

1. the differential fuzzer *detects* the fault within a few seeds;
2. the shrinker reduces the failing program to <= 12 ops;
3. the shrunk program passes once the fault is removed (i.e. the
   reproducer blames the fault, not a latent real bug).
"""

from __future__ import annotations

import pytest

from repro.testing import generate, run_sequence, shrink
from repro.testing.faults import FAULTS

MAX_SHRUNK_OPS = 12
SEEDS = 6
OPS = 60


@pytest.mark.parametrize("fault", sorted(FAULTS))
def test_fault_detected_and_shrunk(fault):
    # Journal faults only corrupt the rollback path, so the whole
    # pipeline (search, shrink predicate, clean re-run) arms mid-batch
    # crash injection for them; the crash-armed clean run then doubles
    # as a true-rollback check on the shrunk program.
    needs_crash = FAULTS[fault].needs_crash
    profile = "batch" if needs_crash else "default"
    found = None
    for seed in range(SEEDS):
        report = run_sequence(
            generate("list", seed, OPS, profile=profile),
            backend="both",
            fault=fault,
            crash_seed=seed if needs_crash else None,
        )
        if not report.ok:
            found = seed
            break
    assert found is not None, f"fault {fault!r} never detected"

    seq = generate("list", found, OPS, profile=profile)
    crash = found if needs_crash else None

    def fails(cand):
        return not run_sequence(
            cand, backend="both", fault=fault, crash_seed=crash
        ).ok

    result = shrink(seq, fails)
    shrunk = result.sequence
    assert len(shrunk.ops) <= MAX_SHRUNK_OPS, (
        f"shrunk reproducer too large: {len(shrunk.ops)} ops"
    )
    # Still fails with the fault ...
    assert not run_sequence(
        shrunk, backend="both", fault=fault, crash_seed=crash
    ).ok
    # ... and passes cleanly without it (same crash schedule).
    clean = run_sequence(shrunk, backend="both", crash_seed=crash)
    assert clean.ok, f"shrunk repro fails without fault: {clean.failure}"


def test_fault_activation_is_reversible():
    """Patching must restore originals even when the body raises."""
    from repro.perf.flat_rbsts import FlatRBSTS

    original = FlatRBSTS._update_upward
    fault = FAULTS["flat-skip-upward-repair"]
    with pytest.raises(RuntimeError):
        with fault.activate():
            assert FlatRBSTS._update_upward is not original
            raise RuntimeError("boom")
    assert FlatRBSTS._update_upward is original


def test_fault_registry_metadata():
    for name, fault in FAULTS.items():
        assert fault.name == name
        assert fault.description
        assert fault.detected_by

"""Hypothesis stateful test (ISSUE satellite a): arbitrary interleavings
of batch inserts / deletes / relabels on :class:`IncrementalListPrefix`
against a naive-recompute oracle (plain Python list + ``itertools``
prefix folds), with both backends driven in lockstep.

Reuses the shared ring strategies from ``tests/conftest.py``.
"""

from __future__ import annotations

import itertools

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.algebra.monoid import sum_monoid
from repro.listprefix.structure import IncrementalListPrefix
from repro.testing.oracles import assert_twins

from tests.conftest import RINGS, ring_elements

RING_NAME = "mod97"
RING = RINGS[RING_NAME]
elements = ring_elements(RING_NAME)


class ListPrefixOracleMachine(RuleBasedStateMachine):
    """Differential: reference + flat subjects vs the naive model."""

    @initialize(
        items=st.lists(elements, min_size=1, max_size=16),
        seed=st.integers(0, 1000),
    )
    def setup(self, items, seed):
        self.monoid = sum_monoid(RING)
        self.model = list(items)
        self.subjects = {
            name: IncrementalListPrefix(
                self.monoid, items, seed=seed, backend=name
            )
            for name in ("reference", "flat")
        }

    # -- updates ---------------------------------------------------------
    @rule(data=st.data())
    def batch_insert(self, data):
        k = data.draw(st.integers(1, 4))
        reqs = [
            (data.draw(st.integers(0, len(self.model))), data.draw(elements))
            for _ in range(k)
        ]
        for lp in self.subjects.values():
            lp.batch_insert(reqs)
        by_pos: dict[int, list] = {}
        for pos, v in reqs:
            by_pos.setdefault(pos, []).append(v)
        out = []
        for pos in range(len(self.model) + 1):
            out.extend(by_pos.get(pos, []))
            if pos < len(self.model):
                out.append(self.model[pos])
        self.model = out

    @rule(data=st.data())
    @precondition(lambda self: len(self.model) > 3)
    def batch_delete(self, data):
        k = data.draw(st.integers(1, min(3, len(self.model) - 1)))
        idxs = data.draw(
            st.lists(
                st.integers(0, len(self.model) - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        for lp in self.subjects.values():
            lp.batch_delete([lp.handle_at(i) for i in idxs])
        dead = set(idxs)
        self.model = [x for i, x in enumerate(self.model) if i not in dead]

    @rule(data=st.data())
    def batch_relabel(self, data):
        k = data.draw(st.integers(1, min(4, len(self.model))))
        idxs = data.draw(
            st.lists(
                st.integers(0, len(self.model) - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        vals = [data.draw(elements) for _ in idxs]
        for lp in self.subjects.values():
            lp.batch_set(
                [(lp.handle_at(i), v) for i, v in zip(idxs, vals)]
            )
        for i, v in zip(idxs, vals):
            self.model[i] = v

    # -- queries (differential against the naive recompute) --------------
    @rule(data=st.data())
    def batch_prefix_query(self, data):
        k = data.draw(st.integers(1, min(4, len(self.model))))
        idxs = data.draw(
            st.lists(
                st.integers(0, len(self.model) - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        expect = list(itertools.accumulate(self.model, self.monoid.combine))
        for name, lp in self.subjects.items():
            got = lp.batch_prefix([lp.handle_at(i) for i in idxs])
            for i, g in zip(idxs, got):
                assert RING.eq(g, expect[i]), (
                    f"{name}: prefix[{i}] = {g!r} != {expect[i]!r}"
                )

    @rule(data=st.data())
    @precondition(lambda self: len(self.model) >= 2)
    def range_query(self, data):
        i = data.draw(st.integers(0, len(self.model) - 2))
        j = data.draw(st.integers(i, len(self.model) - 1))
        expect = self.monoid.fold(self.model[i : j + 1])
        for name, lp in self.subjects.items():
            got = lp.range_fold(lp.handle_at(i), lp.handle_at(j))
            assert RING.eq(got, expect), f"{name}: range[{i},{j}]"

    # -- invariants ------------------------------------------------------
    @invariant()
    def subjects_match_model(self):
        if not hasattr(self, "model"):
            return
        for name, lp in self.subjects.items():
            assert lp.values() == self.model, name
            assert RING.eq(lp.total(), self.monoid.fold(self.model)), name
            lp.check_invariants()

    @invariant()
    def backends_are_twins(self):
        if not hasattr(self, "model"):
            return
        assert_twins(
            self.subjects["reference"].tree,
            self.subjects["flat"].tree,
            where="stateful",
        )


TestListPrefixOracle = ListPrefixOracleMachine.TestCase
TestListPrefixOracle.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)

"""Smoke tests for the model-based fuzzing subsystem (ISSUE tentpole).

These keep the CI cost low (small op counts); the heavyweight acceptance
loads (3 seeds x 2000 ops) run in the dedicated ``fuzz-smoke`` CI job.
"""

from __future__ import annotations

import json

import pytest

from repro.testing import generate, run_sequence
from repro.testing.fuzz import main
from repro.testing.ops import OpSequence

SCENARIOS = ["list", "contraction"]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", [0, 1])
def test_fuzz_clean_both_backends(scenario, seed):
    n_ops = 120 if scenario == "list" else 25
    report = run_sequence(
        generate(scenario, seed, n_ops), backend="both", check_every=1
    )
    assert report.ok, report.failure
    assert report.ops_executed == n_ops
    assert report.checks == n_ops + 1  # per-op audits + final audit


@pytest.mark.parametrize("backend", ["reference", "flat"])
def test_fuzz_single_backend(backend):
    report = run_sequence(generate("list", 3, 80), backend=backend)
    assert report.ok, report.failure


def test_fuzz_check_every_sparser_audits():
    seq = generate("list", 5, 100)
    dense = run_sequence(seq, backend="both", check_every=1)
    sparse = run_sequence(seq, backend="both", check_every=25)
    assert dense.ok and sparse.ok
    assert sparse.checks < dense.checks


def test_sequential_oracle_agrees():
    report = run_sequence(
        generate("contraction", 2, 20), backend="both", oracle="sequential"
    )
    assert report.ok, report.failure


@pytest.mark.parametrize("ring", ["mod97", "boolean"])
def test_contraction_heavy_profile_clean(ring):
    """The PR6 ``contraction-heavy`` profile replays clean on both
    backends; the boolean run pins the python-kernel fallback."""
    seq = generate(
        "contraction", 9, 25, ring=ring, profile="contraction-heavy"
    )
    assert seq.meta["profile"] == "contraction-heavy"
    report = run_sequence(seq, backend="both", check_every=1)
    assert report.ok, report.failure


def test_contraction_heavy_widens_batches():
    seq = generate("contraction", 4, 60, profile="contraction-heavy")
    widest = max(len(op[1]) for op in seq.ops)
    assert widest > 4  # default profile caps batches at 4


def test_profile_is_scenario_scoped():
    from repro.errors import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        generate("contraction", 0, 10, profile="batch")
    with pytest.raises(InvalidParameterError):
        generate("list", 0, 10, profile="contraction-heavy")


def test_generator_determinism_and_roundtrip():
    a = generate("list", 11, 60)
    b = generate("list", 11, 60)
    assert a.to_json() == b.to_json()
    again = OpSequence.loads(a.dumps())
    assert again.to_json() == a.to_json()
    # JSON payload is plain data (replayable from disk).
    json.loads(a.dumps())


def test_generator_distinct_seeds_differ():
    assert generate("list", 0, 60).to_json() != generate("list", 1, 60).to_json()


def test_cli_main_clean_run():
    rc = main(
        ["--seed", "0", "--ops", "60", "--backend", "both", "--no-save"]
    )
    assert rc == 0


def test_cli_replay_corpus_entry(tmp_path):
    seq = generate("list", 7, 40)
    path = tmp_path / "entry.json"
    path.write_text(seq.dumps())
    assert main(["--replay", str(path), "--backend", "both"]) == 0

"""`Machine.run(max_steps)` hang detection: a non-quiescing program
must raise `MachineHangError` (the one recoverable hang signal the
resilience layer keys on), and quiescing programs must never trip it."""

from __future__ import annotations

import pytest

from repro.errors import MachineHangError, MachineStateError
from repro.pram.machine import Machine
from repro.pram.ops import Fork, Local, Read, Write


def spinner():
    """Deliberately non-quiescing: polls a cell nobody ever writes."""
    while True:
        yield Read(("never", 0), None)


def test_non_quiescing_program_raises_machine_hang_error():
    m = Machine()
    m.spawn(spinner())
    with pytest.raises(MachineHangError) as ei:
        m.run(max_steps=50)
    assert ei.value.max_steps == 50
    assert ei.value.live == 1


def test_hang_error_taxonomy():
    # Recoverable-hang detection composes with both generic timeout
    # handling and the machine-error taxonomy.
    assert issubclass(MachineHangError, TimeoutError)
    assert issubclass(MachineHangError, MachineStateError)


def test_starved_fork_family_reports_all_live_processors():
    def parent():
        yield Fork(spinner())
        yield Fork(spinner())
        yield Local()

    m = Machine()
    m.spawn(parent())
    with pytest.raises(MachineHangError) as ei:
        m.run(max_steps=40)
    assert ei.value.live == 2  # parent halted; both spinners starve


def test_quiescing_program_is_untouched_by_a_tight_budget():
    m = Machine()

    def prog():
        yield Write("a", 1)
        yield Local()

    m.spawn(prog())
    metrics = m.run(max_steps=3)  # exactly enough
    assert metrics.steps == 2
    assert m.memory.read("a") == 1


def test_budget_exhaustion_after_quiescence_is_not_a_hang():
    m = Machine()

    def prog():
        yield Write("a", 1)

    m.spawn(prog())
    m.run(max_steps=1_000)  # budget far exceeds steps: no error
    # Re-running an already-quiescent machine is a no-op, not a hang.
    m.run(max_steps=1)

"""CRCW memory semantics under every write-conflict policy."""

import pytest

from repro.errors import WriteConflictError
from repro.pram.memory import SharedMemory, WritePolicy


def test_reads_see_previous_step_until_commit():
    mem = SharedMemory()
    mem.poke("x", 1)
    mem.stage_write(0, "x", 2)
    assert mem.read("x") == 1  # synchronous step: staged not visible
    mem.commit()
    assert mem.read("x") == 2


def test_default_for_missing_cell():
    mem = SharedMemory()
    assert mem.read("nope") is None
    assert mem.read("nope", default=7) == 7


def test_common_policy_accepts_agreeing_writers():
    mem = SharedMemory(policy=WritePolicy.COMMON)
    mem.stage_write(0, "x", 5)
    mem.stage_write(1, "x", 5)
    mem.commit()
    assert mem.read("x") == 5
    assert mem.conflict_count == 1


def test_common_policy_rejects_disagreement():
    mem = SharedMemory(policy=WritePolicy.COMMON)
    mem.stage_write(0, "x", 5)
    mem.stage_write(1, "x", 6)
    with pytest.raises(WriteConflictError):
        mem.commit()


def test_priority_policy_lowest_pid_wins():
    mem = SharedMemory(policy=WritePolicy.PRIORITY)
    mem.stage_write(3, "x", "late")
    mem.stage_write(1, "x", "early")
    mem.stage_write(2, "x", "mid")
    mem.commit()
    assert mem.read("x") == "early"


def test_max_and_min_policies_combine():
    mx = SharedMemory(policy=WritePolicy.MAX)
    mx.stage_write(0, "x", 3)
    mx.stage_write(1, "x", 9)
    mx.commit()
    assert mx.read("x") == 9

    mn = SharedMemory(policy=WritePolicy.MIN)
    mn.stage_write(0, "x", 3)
    mn.stage_write(1, "x", 9)
    mn.commit()
    assert mn.read("x") == 3


def test_arbitrary_policy_is_seed_deterministic():
    def run(seed):
        mem = SharedMemory(policy=WritePolicy.ARBITRARY, seed=seed)
        for pid in range(10):
            mem.stage_write(pid, "x", pid)
        mem.commit()
        return mem.read("x")

    assert run(42) == run(42)
    # Some seed pair must differ (10 writers, overwhelming probability).
    assert len({run(s) for s in range(20)}) > 1


def test_distinct_cells_do_not_conflict():
    mem = SharedMemory(policy=WritePolicy.COMMON)
    mem.stage_write(0, ("a", 1), 1)
    mem.stage_write(1, ("a", 2), 2)
    mem.commit()
    assert mem.read(("a", 1)) == 1
    assert mem.read(("a", 2)) == 2
    assert mem.conflict_count == 0
    assert len(mem) == 2


def test_snapshot_is_a_copy():
    mem = SharedMemory()
    mem.poke("x", 1)
    snap = mem.snapshot()
    snap["x"] = 99
    assert mem.read("x") == 1


# ---------------------------------------------------------------------------
# regression tests for the commit-atomicity / tie-break fixes
# ---------------------------------------------------------------------------


def test_commit_is_atomic_on_common_conflict():
    """A COMMON disagreement must leave committed memory exactly at the
    previous step boundary — no partial commit of the cells staged
    before the offending one."""
    mem = SharedMemory(policy=WritePolicy.COMMON)
    mem.poke("a", "old-a")
    mem.poke("b", "old-b")
    before = mem.snapshot()
    mem.stage_write(0, "a", "new-a")  # agreeing single writer
    mem.stage_write(0, "b", 1)
    mem.stage_write(1, "b", 2)  # disagreement
    with pytest.raises(WriteConflictError):
        mem.commit()
    assert mem.snapshot() == before  # nothing committed, not even "a"


def test_failed_commit_discards_the_staged_step():
    mem = SharedMemory(policy=WritePolicy.COMMON)
    mem.stage_write(0, "x", 1)
    mem.stage_write(1, "x", 2)
    with pytest.raises(WriteConflictError):
        mem.commit()
    # The offending step is gone: the next commit is a clean no-op.
    mem.commit()
    assert mem.read("x") is None


def test_priority_duplicate_pid_does_not_compare_values():
    """min() over (pid, value) pairs used to fall through to comparing
    values when one pid staged twice — crashing on incomparable types.
    The tie-break must key on the pid alone (first staged write wins)."""
    mem = SharedMemory(policy=WritePolicy.PRIORITY)
    mem.stage_write(1, "x", {"unorderable": True})
    mem.stage_write(1, "x", {"second": True})
    mem.stage_write(2, "x", "loser")
    mem.commit()
    assert mem.read("x") == {"unorderable": True}


def test_conflict_count_requires_distinct_writers():
    """One processor staging twice is not a write conflict."""
    mem = SharedMemory(policy=WritePolicy.PRIORITY)
    mem.stage_write(0, "x", 1)
    mem.stage_write(0, "x", 2)
    mem.commit()
    assert mem.conflict_count == 0
    mem.stage_write(0, "y", 1)
    mem.stage_write(1, "y", 2)
    mem.commit()
    assert mem.conflict_count == 1

"""CRCW memory semantics under every write-conflict policy."""

import pytest

from repro.errors import WriteConflictError
from repro.pram.memory import SharedMemory, WritePolicy


def test_reads_see_previous_step_until_commit():
    mem = SharedMemory()
    mem.poke("x", 1)
    mem.stage_write(0, "x", 2)
    assert mem.read("x") == 1  # synchronous step: staged not visible
    mem.commit()
    assert mem.read("x") == 2


def test_default_for_missing_cell():
    mem = SharedMemory()
    assert mem.read("nope") is None
    assert mem.read("nope", default=7) == 7


def test_common_policy_accepts_agreeing_writers():
    mem = SharedMemory(policy=WritePolicy.COMMON)
    mem.stage_write(0, "x", 5)
    mem.stage_write(1, "x", 5)
    mem.commit()
    assert mem.read("x") == 5
    assert mem.conflict_count == 1


def test_common_policy_rejects_disagreement():
    mem = SharedMemory(policy=WritePolicy.COMMON)
    mem.stage_write(0, "x", 5)
    mem.stage_write(1, "x", 6)
    with pytest.raises(WriteConflictError):
        mem.commit()


def test_priority_policy_lowest_pid_wins():
    mem = SharedMemory(policy=WritePolicy.PRIORITY)
    mem.stage_write(3, "x", "late")
    mem.stage_write(1, "x", "early")
    mem.stage_write(2, "x", "mid")
    mem.commit()
    assert mem.read("x") == "early"


def test_max_and_min_policies_combine():
    mx = SharedMemory(policy=WritePolicy.MAX)
    mx.stage_write(0, "x", 3)
    mx.stage_write(1, "x", 9)
    mx.commit()
    assert mx.read("x") == 9

    mn = SharedMemory(policy=WritePolicy.MIN)
    mn.stage_write(0, "x", 3)
    mn.stage_write(1, "x", 9)
    mn.commit()
    assert mn.read("x") == 3


def test_arbitrary_policy_is_seed_deterministic():
    def run(seed):
        mem = SharedMemory(policy=WritePolicy.ARBITRARY, seed=seed)
        for pid in range(10):
            mem.stage_write(pid, "x", pid)
        mem.commit()
        return mem.read("x")

    assert run(42) == run(42)
    # Some seed pair must differ (10 writers, overwhelming probability).
    assert len({run(s) for s in range(20)}) > 1


def test_distinct_cells_do_not_conflict():
    mem = SharedMemory(policy=WritePolicy.COMMON)
    mem.stage_write(0, ("a", 1), 1)
    mem.stage_write(1, ("a", 2), 2)
    mem.commit()
    assert mem.read(("a", 1)) == 1
    assert mem.read(("a", 2)) == 2
    assert mem.conflict_count == 0
    assert len(mem) == 2


def test_snapshot_is_a_copy():
    mem = SharedMemory()
    mem.poke("x", 1)
    snap = mem.snapshot()
    snap["x"] = 99
    assert mem.read("x") == 1

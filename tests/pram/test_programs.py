"""Library PRAM programs: results and step counts."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.pram.programs import list_ranking, parallel_sum, prefix_sums


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=200))
@settings(max_examples=25, deadline=None)
def test_parallel_sum_correct(values):
    total, _ = parallel_sum(values)
    assert total == sum(values)


def test_parallel_sum_empty_rejected():
    with pytest.raises(ValueError):
        parallel_sum([])


def test_parallel_sum_steps_logarithmic():
    for n in (64, 1024):
        _, metrics = parallel_sum(list(range(n)))
        # 3 instructions per round, ceil(log2 n) rounds.
        assert metrics.steps <= 3 * (math.ceil(math.log2(n)) + 1)


@given(st.lists(st.integers(-50, 50), min_size=0, max_size=150))
@settings(max_examples=25, deadline=None)
def test_prefix_sums_correct(values):
    import itertools

    out, _ = prefix_sums(values)
    assert out == list(itertools.accumulate(values))


def test_prefix_sums_steps_logarithmic():
    _, metrics = prefix_sums(list(range(256)))
    assert metrics.steps <= 3 * (math.ceil(math.log2(256)) + 1)


def test_list_ranking_matches_positions():
    n = 100
    order = list(range(n))
    random.Random(0).shuffle(order)
    successor = {
        order[i]: (order[i + 1] if i + 1 < n else None) for i in range(n)
    }
    ranks, metrics = list_ranking(successor)
    for i, node in enumerate(order):
        assert ranks[node] == n - 1 - i
    assert metrics.steps <= 5 * (math.ceil(math.log2(n)) + 2)


def test_list_ranking_single_node():
    ranks, _ = list_ranking({7: None})
    assert ranks == {7: 0}

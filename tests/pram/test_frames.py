"""Work/span accounting combinators."""

from hypothesis import given, strategies as st

from repro.pram.frames import SpanTracker


def test_tick_charges_sequentially():
    t = SpanTracker()
    t.tick(3)
    t.tick(2)
    assert t.work == 5 and t.span == 5


def test_parallel_takes_max_span_sum_work():
    t = SpanTracker()

    def branch(k):
        def run():
            t.tick(k)
            return k

        return run

    out = t.parallel([branch(1), branch(5), branch(3)])
    assert out == [1, 5, 3]
    assert t.work == 9
    assert t.span == 5
    assert t.peak_width == 3


def test_nested_parallel():
    t = SpanTracker()

    def inner():
        t.parallel([lambda: t.tick(2), lambda: t.tick(4)])

    def outer_branch():
        t.tick(1)
        inner()

    t.parallel([outer_branch, lambda: t.tick(10)])
    # branch 1 span = 1 + max(2,4) = 5; branch 2 span = 10.
    assert t.span == 10
    assert t.work == 1 + 2 + 4 + 10


def test_pmap_returns_results_in_order():
    t = SpanTracker()
    out = t.pmap(lambda x: x * x, range(5))
    assert out == [0, 1, 4, 9, 16]


def test_processors_for_brent_bound():
    t = SpanTracker()
    t.charge(work=100, span=10)
    assert t.processors_for() == 10  # ceil(100/10)
    assert t.processors_for(target_span=50) == 2
    empty = SpanTracker()
    assert empty.processors_for() == 0


@given(st.lists(st.integers(1, 20), min_size=1, max_size=8))
def test_parallel_span_is_max_of_branches(costs):
    t = SpanTracker()
    t.parallel([(lambda c=c: t.tick(c)) for c in costs])
    assert t.span == max(costs)
    assert t.work == sum(costs)


def test_charge_accumulates_independently():
    t = SpanTracker()
    t.charge(work=7, span=2)
    t.charge(work=3, span=4)
    assert t.as_dict()["work"] == 10
    assert t.as_dict()["span"] == 6

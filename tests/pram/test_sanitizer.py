"""Dynamic step-discipline sanitizer: hazard detection, sanctioned
families, provenance log, and Machine integration."""

import pytest

from repro.errors import ReproError, StepDisciplineError
from repro.pram.machine import Machine
from repro.pram.memory import WritePolicy
from repro.pram.ops import Read, Write
from repro.pram.sanitizer import (
    HazardRecord,
    SanitizingSharedMemory,
    address_family,
)


def test_address_family():
    assert address_family(("active", 17)) == "active"
    assert address_family("x") == "x"
    assert address_family(3) == 3


def test_stale_read_raises():
    mem = SanitizingSharedMemory(policy=WritePolicy.PRIORITY)
    mem.poke("x", 1)
    mem.note_read(0, "x")
    mem.stage_write(1, "x", 2)
    with pytest.raises(StepDisciplineError):
        mem.commit()


def test_stale_read_is_a_repro_error():
    with pytest.raises(ReproError):
        mem = SanitizingSharedMemory(policy=WritePolicy.PRIORITY)
        mem.note_read(0, "x")
        mem.stage_write(1, "x", 2)
        mem.commit()


def test_read_without_same_step_write_is_clean():
    mem = SanitizingSharedMemory(policy=WritePolicy.PRIORITY)
    mem.poke("x", 1)
    mem.note_read(0, "x")
    mem.stage_write(1, "y", 2)  # different cell
    mem.commit()
    mem.note_read(0, "y")  # next step: read of the committed value
    mem.commit()
    assert mem.hazards == []


def test_sanctioned_family_suppresses_stale_read():
    mem = SanitizingSharedMemory(
        policy=WritePolicy.MAX, sanctioned=("active",)
    )
    mem.note_read(0, ("active", 7))
    mem.stage_write(1, ("active", 7), 1)
    mem.commit()
    assert mem.hazards == []
    assert mem.read(("active", 7)) == 1


def test_nondeterministic_arbitrary_write_detected():
    mem = SanitizingSharedMemory(policy=WritePolicy.ARBITRARY, mode="record")
    mem.stage_write(0, "x", 1)
    mem.stage_write(1, "x", 2)
    mem.commit()
    assert [h.kind for h in mem.hazards] == ["nondeterministic-write"]
    with pytest.raises(StepDisciplineError):
        mem.assert_clean()


def test_agreeing_arbitrary_writers_are_clean():
    mem = SanitizingSharedMemory(policy=WritePolicy.ARBITRARY)
    mem.stage_write(0, "x", 5)
    mem.stage_write(1, "x", 5)
    mem.commit()
    assert mem.hazards == []


def test_combining_policies_are_not_flagged():
    mem = SanitizingSharedMemory(policy=WritePolicy.MAX)
    mem.stage_write(0, "x", 1)
    mem.stage_write(1, "x", 9)
    mem.commit()
    assert mem.hazards == []
    assert mem.read("x") == 9


def test_poke_mid_step_detected():
    mem = SanitizingSharedMemory(policy=WritePolicy.PRIORITY, mode="record")
    mem.stage_write(0, "x", 1)
    mem.poke("y", 2)  # step still in flight
    assert [h.kind for h in mem.hazards] == ["poke-mid-step"]
    # Setup pokes before any step are fine.
    clean = SanitizingSharedMemory(policy=WritePolicy.PRIORITY)
    clean.poke("x", 1)
    assert clean.hazards == []


def test_record_mode_accumulates_instead_of_raising():
    mem = SanitizingSharedMemory(policy=WritePolicy.PRIORITY, mode="record")
    for step in range(3):
        mem.note_read(0, "x")
        mem.stage_write(1, "x", step)
        mem.commit()
    assert len(mem.hazards) == 3
    assert all(isinstance(h, HazardRecord) for h in mem.hazards)
    assert sorted(h.step for h in mem.hazards) == [0, 1, 2]


def test_writer_provenance_log():
    mem = SanitizingSharedMemory(policy=WritePolicy.PRIORITY)
    mem.stage_write(2, "x", "b")
    mem.stage_write(1, "x", "a")
    mem.commit()
    mem.stage_write(0, "x", "c")
    mem.commit()
    assert mem.writers_of("x") == [(0, 2, "b"), (0, 1, "a"), (1, 0, "c")]
    assert mem.writers_of("never") == []
    assert mem.read("x") == "c"


def test_invalid_mode_rejected():
    with pytest.raises(StepDisciplineError):
        SanitizingSharedMemory(mode="explode")


# ---------------------------------------------------------------------------
# Machine integration
# ---------------------------------------------------------------------------


def test_machine_sanitize_flag_installs_sanitizer():
    machine = Machine(policy=WritePolicy.PRIORITY, sanitize=True)
    assert isinstance(machine.memory, SanitizingSharedMemory)
    assert machine.memory.mode == "raise"
    recording = Machine(policy=WritePolicy.PRIORITY, sanitize="record")
    assert recording.memory.mode == "record"
    plain = Machine(policy=WritePolicy.PRIORITY)
    assert not isinstance(plain.memory, SanitizingSharedMemory)


def test_machine_catches_same_step_read_write_race():
    """Two lockstep processors: one reads ("x", 0) in the very step the
    other writes it — the dynamic twin of lint rule R101."""

    def reader():
        yield Read(("x", 0))

    def writer():
        yield Write(("x", 0), 1)

    machine = Machine(policy=WritePolicy.PRIORITY, sanitize=True)
    machine.spawn(reader())
    machine.spawn(writer())
    with pytest.raises(StepDisciplineError):
        machine.run()


def test_machine_clean_program_passes_sanitized():
    """The Hillis-Steele step pattern (read round, then write round)
    is step-disciplined and must run unflagged."""

    def stepper(i, stride):
        left = yield Read(("x", i - stride), default=0.0)
        mine = yield Read(("x", i))
        yield Write(("x", i), left + mine)

    machine = Machine(policy=WritePolicy.PRIORITY, sanitize=True)
    for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
        machine.memory.poke(("x", i), v)
    for i in range(1, 4):
        machine.spawn(stepper(i, 1))
    machine.run()
    assert machine.memory.hazards == []


def test_machine_sanctioned_monotone_marking_runs_clean():
    """Concurrent ACTIVE marking under MAX — the Theorem 2.1 pattern —
    is accepted when the family is declared sanctioned."""

    def marker(node):
        was = yield Read(("active", node))
        if not was:
            yield Write(("active", node), 1)

    machine = Machine(
        policy=WritePolicy.MAX, sanitize=True, sanctioned=("active",)
    )
    for pid in range(4):
        machine.spawn(marker(0))
    machine.run()
    assert machine.memory.read(("active", 0)) == 1
    assert machine.memory.hazards == []

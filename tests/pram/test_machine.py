"""Step-synchronous machine execution: timing, forking, halting."""

import pytest

from repro.errors import MachineStateError, ProcessorLimitError
from repro.pram.machine import Machine
from repro.pram.memory import WritePolicy
from repro.pram.ops import Fork, Halt, Local, Read, Write


def test_single_processor_counts_steps():
    m = Machine()

    def prog():
        yield Write("a", 1)
        yield Local()
        yield Write("b", 2)

    m.spawn(prog())
    metrics = m.run()
    assert metrics.steps == 3
    assert metrics.work == 3
    assert metrics.peak_processors == 1
    assert m.memory.read("a") == 1 and m.memory.read("b") == 2


def test_parallel_processors_share_steps():
    m = Machine()

    def prog(i):
        yield Write(("cell", i), i)
        yield Local()

    for i in range(8):
        m.spawn(prog(i))
    metrics = m.run()
    assert metrics.steps == 2  # all 8 advance together
    assert metrics.work == 16
    assert metrics.peak_processors == 8


def test_read_returns_committed_value():
    m = Machine()
    m.memory.poke("x", 41)
    seen = []

    def prog():
        v = yield Read("x")
        seen.append(v)
        yield Write("x", v + 1)

    m.spawn(prog())
    m.run()
    assert seen == [41]
    assert m.memory.read("x") == 42


def test_same_step_writes_invisible_to_same_step_reads():
    """The read sub-phase of a step sees the previous step's memory."""
    m = Machine(policy=WritePolicy.MAX)
    seen = []

    def writer():
        yield Write("x", 10)

    def reader():
        v = yield Read("x", default=0)
        seen.append(v)

    m.spawn(writer())
    m.spawn(reader())
    m.run()
    assert seen == [0]  # not 10: write commits at end of the step


def test_fork_starts_next_step_and_returns_pid():
    m = Machine()
    pids = []

    def child():
        yield Write("child-ran", 1)

    def parent():
        pid = yield Fork(child())
        pids.append(pid)
        yield Local()

    m.spawn(parent())
    metrics = m.run()
    assert m.memory.read("child-ran") == 1
    assert pids == [1]
    assert metrics.forks == 1
    assert metrics.peak_processors == 2


def test_fork_bomb_hits_processor_cap():
    m = Machine(max_processors=10)

    def bomb():
        while True:
            yield Fork(bomb())

    m.spawn(bomb())
    with pytest.raises(ProcessorLimitError):
        m.run()


def test_halt_instruction_stops_processor():
    m = Machine()

    def prog():
        yield Write("a", 1)
        yield Halt()
        yield Write("b", 2)  # never reached

    m.spawn(prog())
    m.run()
    assert m.memory.read("a") == 1
    assert m.memory.read("b") is None


def test_non_generator_program_rejected():
    m = Machine()
    with pytest.raises(MachineStateError):
        m.spawn(lambda: None)  # type: ignore[arg-type]


def test_unknown_instruction_rejected():
    m = Machine()

    def prog():
        yield "not-an-instruction"

    m.spawn(prog())
    with pytest.raises(MachineStateError):
        m.run()


def test_run_with_step_budget_raises_when_stuck():
    m = Machine()

    def spin():
        while True:
            yield Local()

    m.spawn(spin())
    with pytest.raises(MachineStateError):
        m.run(max_steps=10)


def test_pointer_jumping_list_ranking():
    """A classic PRAM program: rank an n-list in O(log n) steps."""
    n = 64
    m = Machine(policy=WritePolicy.PRIORITY)
    for i in range(n):
        m.memory.poke(("next", i), i + 1 if i + 1 < n else None)
        m.memory.poke(("rank", i), 1 if i + 1 < n else 0)

    def ranker(i):
        while True:
            nxt = yield Read(("next", i))
            if nxt is None:
                return
            r = yield Read(("rank", i))
            r2 = yield Read(("rank", nxt))
            n2 = yield Read(("next", nxt))
            yield Write(("rank", i), r + r2)
            yield Write(("next", i), n2)

    for i in range(n):
        m.spawn(ranker(i))
    metrics = m.run()
    for i in range(n):
        assert m.memory.read(("rank", i)) == n - 1 - i
    # 5 instructions per jump round, ~log2(n) rounds.
    assert metrics.steps <= 5 * 8
